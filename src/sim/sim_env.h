// SimEnvironment — the clock of the reproduction.
//
// The paper's evaluation ran on real hardware: 7200 RPM disks (~4.5–8 ms per
// log flush) and 100 Mbps Ethernet (~3.6 ms round trips). Re-running 20K
// requests at those latencies would take minutes per configuration, so every
// latency in msplog is expressed in *model milliseconds* and realized as a
// real sleep of `model_ms × time_scale`:
//
//   time_scale = 0    sleeps are no-ops; unit tests run instantly and all
//                     logic (logging, recovery, orphan detection) still runs.
//   time_scale = 0.1  one model millisecond costs 100 µs of wall time;
//                     benchmarks measure wall time and divide by the scale to
//                     report model milliseconds comparable to the paper's.
//
// Concurrency effects are preserved because the sleeps are real: parallel
// distributed log flushes overlap, a single simulated disk serializes its
// I/Os (mutex held across the sleep), and thread pools saturate naturally.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/scraper.h"
#include "obs/trace.h"

namespace msplog {

/// Global counters describing simulator activity. All fields are cumulative.
struct SimStats {
  std::atomic<uint64_t> disk_flushes{0};
  std::atomic<uint64_t> disk_sectors_written{0};
  std::atomic<uint64_t> disk_bytes_written{0};   ///< logical payload bytes
  std::atomic<uint64_t> disk_bytes_wasted{0};    ///< sector-padding bytes
  std::atomic<uint64_t> disk_reads{0};
  std::atomic<uint64_t> disk_sectors_read{0};
  std::atomic<uint64_t> disk_bytes_reclaimed{0};  ///< log GC (hole punching)
  std::atomic<uint64_t> messages_sent{0};
  std::atomic<uint64_t> messages_dropped{0};
  std::atomic<uint64_t> messages_duplicated{0};
  std::atomic<uint64_t> message_bytes{0};
  std::atomic<uint64_t> dv_entries_attached{0};  ///< DV size overhead (§3.1)
  std::atomic<uint64_t> log_records_appended{0};
  std::atomic<uint64_t> log_bytes_appended{0};
  std::atomic<uint64_t> distributed_flushes{0};
  std::atomic<uint64_t> requests_replayed{0};
  std::atomic<uint64_t> sessions_recovered{0};
  std::atomic<uint64_t> orphans_detected{0};
  /// Replay found a log record that does not match the re-execution — the
  /// service method violated the determinism contract.
  std::atomic<uint64_t> replay_misalignments{0};
  std::atomic<uint64_t> checkpoints_session{0};
  std::atomic<uint64_t> checkpoints_shared_var{0};
  std::atomic<uint64_t> checkpoints_msp{0};

  /// Plain-value copy of the counters (for before/after deltas in tests).
  struct Snapshot {
    uint64_t disk_flushes, disk_sectors_written, disk_bytes_written,
        disk_bytes_wasted, disk_reads, disk_sectors_read,
        disk_bytes_reclaimed, messages_sent,
        messages_dropped, messages_duplicated, message_bytes,
        dv_entries_attached, log_records_appended, log_bytes_appended,
        distributed_flushes, requests_replayed, sessions_recovered,
        orphans_detected, replay_misalignments, checkpoints_session,
        checkpoints_shared_var, checkpoints_msp;
  };
  Snapshot Snap() const {
    return Snapshot{disk_flushes.load(),
                    disk_sectors_written.load(),
                    disk_bytes_written.load(),
                    disk_bytes_wasted.load(),
                    disk_reads.load(),
                    disk_sectors_read.load(),
                    disk_bytes_reclaimed.load(),
                    messages_sent.load(),
                    messages_dropped.load(),
                    messages_duplicated.load(),
                    message_bytes.load(),
                    dv_entries_attached.load(),
                    log_records_appended.load(),
                    log_bytes_appended.load(),
                    distributed_flushes.load(),
                    requests_replayed.load(),
                    sessions_recovered.load(),
                    orphans_detected.load(),
                    replay_misalignments.load(),
                    checkpoints_session.load(),
                    checkpoints_shared_var.load(),
                    checkpoints_msp.load()};
  }
};

/// Shared simulation context: time scaling and statistics. One per test or
/// benchmark scenario; every SimDisk, SimNetwork and Msp holds a pointer.
class SimEnvironment {
 public:
  explicit SimEnvironment(double time_scale = 0.0);
  ~SimEnvironment();

  double time_scale() const { return time_scale_; }

  /// Sleep for `ms` model milliseconds (i.e. `ms * time_scale` real ms).
  /// No-op when the scale is zero or `ms <= 0`.
  void SleepModelMs(double ms);

  /// Wall-clock nanoseconds since environment construction.
  uint64_t ElapsedRealNs() const;

  /// Model milliseconds since environment construction (elapsed / scale).
  /// Returns elapsed real ms when the scale is zero.
  double NowModelMs() const;

  /// Wall-clock floor (ms) for lost-message timeouts when time_scale is 0
  /// ("as fast as possible"). The floor must outlast a healthy peer's
  /// round trip, or resends fire spuriously and corrupt exact-count
  /// expectations; sanitizer instrumentation slows everything ~10-20x, so
  /// instrumented builds get a proportionally larger floor.
  static constexpr int64_t kFastWaitFloorMs =
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
      40;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
      40;
#else
      2;
#endif
#else
      2;
#endif

  SimStats& stats() { return stats_; }
  const SimStats& stats() const { return stats_; }

  /// Named counters/gauges/histograms for everything in this environment.
  /// Handles are stable; look them up once and record with relaxed atomics.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// Request-lifecycle event tracer (bounded ring; on by default).
  obs::EventTracer& tracer() { return tracer_; }
  const obs::EventTracer& tracer() const { return tracer_; }

  /// Crash black box (bounded event ring + frozen snapshot bundles). Owned
  /// here — like the scraper — so the pre-crash ring and bundles survive
  /// Msp crash/recovery; frozen automatically on any audit invariant
  /// violation via a registry hook installed at construction.
  obs::FlightRecorder& flight_recorder() { return flight_recorder_; }
  const obs::FlightRecorder& flight_recorder() const {
    return flight_recorder_;
  }

  /// Background time-series sampler over this environment's registry.
  /// Owned here rather than by any server so its rings survive MSP
  /// crash/restart cycles; idle (not started) by default.
  obs::MetricsScraper& scraper() { return scraper_; }
  const obs::MetricsScraper& scraper() const { return scraper_; }

 private:
  double time_scale_;
  uint64_t start_ns_;
  SimStats stats_;
  obs::MetricsRegistry metrics_;
  obs::EventTracer tracer_;
  obs::FlightRecorder flight_recorder_;  ///< after tracer_: dumps its tail
  obs::MetricsScraper scraper_;  ///< last member: stops before peers die
  int violation_hook_id_ = 0;
};

}  // namespace msplog
