#include "sim/sim_env.h"

#include <time.h>

#include "audit/invariants.h"
#include "audit/lock_order.h"

namespace msplog {

namespace {

uint64_t NowNs() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ULL +
         static_cast<uint64_t>(ts.tv_nsec);
}

// Sleep until an absolute CLOCK_MONOTONIC deadline with sub-100µs accuracy:
// clock_nanosleep most of the way, then spin the short remainder. Plain
// sleep_for overshoots by 50–100 µs, which at small time scales would distort
// composite response times by >10%.
void SleepUntilNs(uint64_t deadline_ns) {
  constexpr uint64_t kSpinMarginNs = 80'000;  // 80 µs
  uint64_t now = NowNs();
  if (deadline_ns > now + kSpinMarginNs) {
    uint64_t target = deadline_ns - kSpinMarginNs;
    struct timespec ts;
    ts.tv_sec = static_cast<time_t>(target / 1000000000ULL);
    ts.tv_nsec = static_cast<long>(target % 1000000000ULL);
    while (clock_nanosleep(CLOCK_MONOTONIC, TIMER_ABSTIME, &ts, nullptr) != 0) {
    }
  }
  while (NowNs() < deadline_ns) {
    // spin the final stretch
  }
}

}  // namespace

SimEnvironment::SimEnvironment(double time_scale)
    : time_scale_(time_scale), start_ns_(NowNs()),
      flight_recorder_([this] { return NowModelMs(); }),
      scraper_(&metrics_, [this] { return NowModelMs(); }) {
  // Ring overwrites become a visible counter: benches check it and warn in
  // their BENCH_JSON when a trace was silently truncated.
  tracer_.set_drop_counter(metrics_.GetCounter("obs.trace_dropped"));
  // Black-box wiring: bundles embed the tracer tail and the freezing
  // thread's held-lock summary, and every audit invariant violation in this
  // process freezes a bundle while this environment lives.
  flight_recorder_.set_tracer_tail_dump(
      [this] { return tracer_.DumpJson(/*max_events=*/256); });
  flight_recorder_.set_held_locks_dump([] {
    std::string out;
    for (const std::string& name :
         audit::LockOrderRegistry::Instance().HeldNamesByThisThread()) {
      if (!out.empty()) out += ", ";
      out += name;
    }
    return out;
  });
  violation_hook_id_ = audit::InvariantRegistry::Instance().AddViolationHook(
      [this](const std::string& invariant, const std::string& detail) {
        flight_recorder_.FreezeOnViolation(invariant, detail);
      });
}

SimEnvironment::~SimEnvironment() {
  audit::InvariantRegistry::Instance().RemoveViolationHook(violation_hook_id_);
}

void SimEnvironment::SleepModelMs(double ms) {
  if (time_scale_ <= 0.0 || ms <= 0.0) return;
  double real_ns = ms * time_scale_ * 1e6;
  SleepUntilNs(NowNs() + static_cast<uint64_t>(real_ns));
}

uint64_t SimEnvironment::ElapsedRealNs() const { return NowNs() - start_ns_; }

double SimEnvironment::NowModelMs() const {
  double real_ms = static_cast<double>(ElapsedRealNs()) / 1e6;
  if (time_scale_ <= 0.0) return real_ms;
  return real_ms / time_scale_;
}

}  // namespace msplog
