#include "sim/sim_env.h"

#include <time.h>

namespace msplog {

namespace {

uint64_t NowNs() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ULL +
         static_cast<uint64_t>(ts.tv_nsec);
}

// Sleep until an absolute CLOCK_MONOTONIC deadline with sub-100µs accuracy:
// clock_nanosleep most of the way, then spin the short remainder. Plain
// sleep_for overshoots by 50–100 µs, which at small time scales would distort
// composite response times by >10%.
void SleepUntilNs(uint64_t deadline_ns) {
  constexpr uint64_t kSpinMarginNs = 80'000;  // 80 µs
  uint64_t now = NowNs();
  if (deadline_ns > now + kSpinMarginNs) {
    uint64_t target = deadline_ns - kSpinMarginNs;
    struct timespec ts;
    ts.tv_sec = static_cast<time_t>(target / 1000000000ULL);
    ts.tv_nsec = static_cast<long>(target % 1000000000ULL);
    while (clock_nanosleep(CLOCK_MONOTONIC, TIMER_ABSTIME, &ts, nullptr) != 0) {
    }
  }
  while (NowNs() < deadline_ns) {
    // spin the final stretch
  }
}

}  // namespace

SimEnvironment::SimEnvironment(double time_scale)
    : time_scale_(time_scale), start_ns_(NowNs()),
      scraper_(&metrics_, [this] { return NowModelMs(); }) {
  // Ring overwrites become a visible counter: benches check it and warn in
  // their BENCH_JSON when a trace was silently truncated.
  tracer_.set_drop_counter(metrics_.GetCounter("obs.trace_dropped"));
}

void SimEnvironment::SleepModelMs(double ms) {
  if (time_scale_ <= 0.0 || ms <= 0.0) return;
  double real_ns = ms * time_scale_ * 1e6;
  SleepUntilNs(NowNs() + static_cast<uint64_t>(real_ns));
}

uint64_t SimEnvironment::ElapsedRealNs() const { return NowNs() - start_ns_; }

double SimEnvironment::NowModelMs() const {
  double real_ms = static_cast<double>(ElapsedRealNs()) / 1e6;
  if (time_scale_ <= 0.0) return real_ms;
  return real_ms / time_scale_;
}

}  // namespace msplog
