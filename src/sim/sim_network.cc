#include "audit/mutex.h"
#include "sim/sim_network.h"

#include <algorithm>

namespace msplog {

bool Mailbox::Pop(Packet* out) {
  audit::UniqueLock lk(mu_);
  cv_.wait(lk, [&] {
    mu_.AssertHeld();
    return closed_ || !queue_.empty();
  });
  if (queue_.empty()) return false;
  *out = std::move(queue_.front());
  queue_.pop_front();
  return true;
}

bool Mailbox::PopWithTimeout(Packet* out, int64_t timeout_real_ms) {
  audit::UniqueLock lk(mu_);
  cv_.wait_for(lk, std::chrono::milliseconds(timeout_real_ms), [&] {
    mu_.AssertHeld();
    return closed_ || !queue_.empty();
  });
  if (queue_.empty()) return false;
  *out = std::move(queue_.front());
  queue_.pop_front();
  return true;
}

void Mailbox::Push(Packet p) {
  audit::LockGuard lk(mu_);
  if (closed_) return;
  queue_.push_back(std::move(p));
  cv_.notify_all();
}

void Mailbox::Close() {
  audit::LockGuard lk(mu_);
  closed_ = true;
  queue_.clear();
  cv_.notify_all();
}

bool Mailbox::closed() const {
  audit::LockGuard lk(mu_);
  return closed_;
}

size_t Mailbox::size() const {
  audit::LockGuard lk(mu_);
  return queue_.size();
}

SimNetwork::SimNetwork(SimEnvironment* env, uint64_t seed)
    : env_(env), rng_(seed) {
  hist_delivery_ms_ = env_->metrics().GetHistogram("net.delivery_ms");
  delivery_thread_ = std::thread([this] { DeliveryLoop(); });
}

SimNetwork::~SimNetwork() { Shutdown(); }

void SimNetwork::Shutdown() {
  {
    audit::LockGuard lk(mu_);
    if (stop_) return;
    stop_ = true;
    cv_.notify_all();
  }
  if (delivery_thread_.joinable()) delivery_thread_.join();
  audit::LockGuard lk(mu_);
  for (auto& [name, mb] : endpoints_) mb->Close();
}

std::shared_ptr<Mailbox> SimNetwork::Register(const std::string& name) {
  audit::LockGuard lk(mu_);
  auto mb = std::make_shared<Mailbox>();
  endpoints_[name] = mb;
  return mb;
}

void SimNetwork::Unregister(const std::string& name) {
  audit::LockGuard lk(mu_);
  auto it = endpoints_.find(name);
  if (it != endpoints_.end()) {
    it->second->Close();
    endpoints_.erase(it);
  }
}

const FaultPlan& SimNetwork::FaultsFor(const std::string& from,
                                       const std::string& to) const {
  mu_.AssertHeld();
  auto it = faults_.find({from, to});
  return it == faults_.end() ? default_faults_ : it->second;
}

double SimNetwork::OneWayMs(const std::string& a, const std::string& b,
                            size_t bytes) const {
  audit::LockGuard lk(mu_);
  double latency = default_one_way_ms_;
  auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  auto it = link_latency_.find(key);
  if (it != link_latency_.end()) latency = it->second;
  if (bandwidth_mbps_ > 0) {
    latency += static_cast<double>(bytes) * 8.0 / (bandwidth_mbps_ * 1000.0);
  }
  return latency;
}

void SimNetwork::SetLinkLatency(const std::string& a, const std::string& b,
                                double one_way_ms) {
  audit::LockGuard lk(mu_);
  auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  link_latency_[key] = one_way_ms;
}

void SimNetwork::SetFaults(const std::string& from, const std::string& to,
                           FaultPlan plan) {
  audit::LockGuard lk(mu_);
  faults_[{from, to}] = plan;
}

void SimNetwork::ClearFaults() {
  audit::LockGuard lk(mu_);
  faults_.clear();
  default_faults_ = FaultPlan();
}

void SimNetwork::Send(const std::string& from, const std::string& to,
                      Bytes wire) {
  env_->stats().messages_sent.fetch_add(1);
  env_->stats().message_bytes.fetch_add(wire.size());

  double delay_ms = OneWayMs(from, to, wire.size());
  int copies = 1;
  {
    audit::LockGuard lk(mu_);
    const FaultPlan& plan = FaultsFor(from, to);
    if (plan.drop_prob > 0 && rng_.Chance(plan.drop_prob)) {
      env_->stats().messages_dropped.fetch_add(1);
      return;
    }
    if (plan.duplicate_prob > 0 && rng_.Chance(plan.duplicate_prob)) {
      env_->stats().messages_duplicated.fetch_add(1);
      copies = 2;
    }
    if (plan.reorder_jitter_ms > 0) {
      delay_ms += rng_.NextDouble() * plan.reorder_jitter_ms;
    }
  }
  hist_delivery_ms_->Record(delay_ms);

  Packet p{from, to, std::move(wire)};
  double scale = env_->time_scale();
  for (int c = 0; c < copies; ++c) {
    Packet copy = (c == copies - 1) ? std::move(p) : p;
    if (scale <= 0.0 || delay_ms <= 0.0) {
      Deliver(std::move(copy));
      continue;
    }
    uint64_t due = env_->ElapsedRealNs() +
                   static_cast<uint64_t>(delay_ms * scale * 1e6);
    audit::LockGuard lk(mu_);
    schedule_.push(Scheduled{due, next_seq_++, std::move(copy)});
    cv_.notify_all();
  }
}

void SimNetwork::Deliver(Packet p) {
  std::shared_ptr<Mailbox> mb;
  {
    audit::LockGuard lk(mu_);
    auto it = endpoints_.find(p.to);
    if (it == endpoints_.end()) return;  // dead host: packet lost
    mb = it->second;
  }
  mb->Push(std::move(p));
}

void SimNetwork::DeliveryLoop() {
  audit::UniqueLock lk(mu_);
  while (!stop_) {
    if (schedule_.empty()) {
      cv_.wait(lk, [&] {
        mu_.AssertHeld();
        return stop_ || !schedule_.empty();
      });
      continue;
    }
    uint64_t now = env_->ElapsedRealNs();
    const Scheduled& top = schedule_.top();
    if (top.due_real_ns <= now) {
      Packet p = top.packet;
      schedule_.pop();
      lk.unlock();
      Deliver(std::move(p));
      lk.lock();
      continue;
    }
    uint64_t wait_ns = top.due_real_ns - now;
    cv_.wait_for(lk, std::chrono::nanoseconds(wait_ns));
  }
}

}  // namespace msplog
