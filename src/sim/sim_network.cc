#include "audit/mutex.h"
#include "sim/sim_network.h"

#include <algorithm>
#include <chrono>

namespace msplog {

namespace {
// Idle-consumer re-poll bound. The eventcount protocol (sleepers_ counter
// + Push's seq_cst fence) already rules out lost wakeups; the timed
// re-poll is liveness insurance on top.
constexpr auto kMailboxRepoll = std::chrono::milliseconds(50);
}  // namespace

bool Mailbox::Pop(Packet* out) {
  if (queue_.TryPop(out)) return true;
  audit::UniqueLock lk(mu_);
  sleepers_.fetch_add(1, std::memory_order_seq_cst);
  for (;;) {
    if (queue_.TryPop(out)) {
      sleepers_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
    if (closed_.load(std::memory_order_acquire)) {
      sleepers_.fetch_sub(1, std::memory_order_relaxed);
      return false;
    }
    cv_.wait_for(lk, kMailboxRepoll);
  }
}

bool Mailbox::PopWithTimeout(Packet* out, int64_t timeout_real_ms) {
  if (queue_.TryPop(out)) return true;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_real_ms);
  audit::UniqueLock lk(mu_);
  sleepers_.fetch_add(1, std::memory_order_seq_cst);
  for (;;) {
    if (queue_.TryPop(out)) {
      sleepers_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
    const auto now = std::chrono::steady_clock::now();
    if (closed_.load(std::memory_order_acquire) || now >= deadline) {
      sleepers_.fetch_sub(1, std::memory_order_relaxed);
      return false;
    }
    cv_.wait_for(lk, std::min<std::chrono::steady_clock::duration>(
                         deadline - now, kMailboxRepoll));
  }
}

void Mailbox::Push(Packet p) {
  if (closed_.load(std::memory_order_acquire)) return;  // dead host: drop
  queue_.Push(std::move(p));
  // Publish-then-check (Dekker): pairs with the consumer registering in
  // sleepers_ before its re-poll — either it sees our packet or we see it
  // sleeping and wake it.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (sleepers_.load(std::memory_order_relaxed) > 0) {
    audit::LockGuard lk(mu_);
    cv_.notify_all();
  }
}

void Mailbox::Close() {
  closed_.store(true, std::memory_order_release);
  // Drop queued packets, matching the dead-host model. A Push racing with
  // Close may leave one packet behind; the consumer either drains it (one
  // extra delivered packet, indistinguishable from delivery-before-crash)
  // or never pops again and it dies with the mailbox.
  Packet dropped;
  while (queue_.TryPop(&dropped)) {
  }
  audit::LockGuard lk(mu_);
  cv_.notify_all();
}

SimNetwork::SimNetwork(SimEnvironment* env, uint64_t seed)
    : env_(env), rng_(seed) {
  hist_delivery_ms_ = env_->metrics().GetHistogram("net.delivery_ms");
  delivery_thread_ = std::thread([this] { DeliveryLoop(); });
}

SimNetwork::~SimNetwork() { Shutdown(); }

void SimNetwork::Shutdown() {
  {
    audit::LockGuard lk(mu_);
    if (stop_) return;
    stop_ = true;
    cv_.notify_all();
  }
  if (delivery_thread_.joinable()) delivery_thread_.join();
  audit::LockGuard lk(mu_);
  for (auto& [name, mb] : endpoints_) mb->Close();
}

std::shared_ptr<Mailbox> SimNetwork::Register(const std::string& name) {
  audit::LockGuard lk(mu_);
  auto mb = std::make_shared<Mailbox>();
  endpoints_[name] = mb;
  return mb;
}

void SimNetwork::Unregister(const std::string& name) {
  audit::LockGuard lk(mu_);
  auto it = endpoints_.find(name);
  if (it != endpoints_.end()) {
    it->second->Close();
    endpoints_.erase(it);
  }
}

const FaultPlan& SimNetwork::FaultsFor(const std::string& from,
                                       const std::string& to) const {
  mu_.AssertHeld();
  auto it = faults_.find({from, to});
  return it == faults_.end() ? default_faults_ : it->second;
}

double SimNetwork::OneWayMs(const std::string& a, const std::string& b,
                            size_t bytes) const {
  audit::LockGuard lk(mu_);
  double latency = default_one_way_ms_;
  auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  auto it = link_latency_.find(key);
  if (it != link_latency_.end()) latency = it->second;
  if (bandwidth_mbps_ > 0) {
    latency += static_cast<double>(bytes) * 8.0 / (bandwidth_mbps_ * 1000.0);
  }
  return latency;
}

void SimNetwork::SetLinkLatency(const std::string& a, const std::string& b,
                                double one_way_ms) {
  audit::LockGuard lk(mu_);
  auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  link_latency_[key] = one_way_ms;
}

void SimNetwork::SetFaults(const std::string& from, const std::string& to,
                           FaultPlan plan) {
  audit::LockGuard lk(mu_);
  faults_[{from, to}] = plan;
}

void SimNetwork::ClearFaults() {
  audit::LockGuard lk(mu_);
  faults_.clear();
  default_faults_ = FaultPlan();
}

void SimNetwork::Send(const std::string& from, const std::string& to,
                      Bytes wire) {
  env_->stats().messages_sent.fetch_add(1);
  env_->stats().message_bytes.fetch_add(wire.size());

  double delay_ms = OneWayMs(from, to, wire.size());
  int copies = 1;
  {
    audit::LockGuard lk(mu_);
    const FaultPlan& plan = FaultsFor(from, to);
    if (plan.drop_prob > 0 && rng_.Chance(plan.drop_prob)) {
      env_->stats().messages_dropped.fetch_add(1);
      return;
    }
    if (plan.duplicate_prob > 0 && rng_.Chance(plan.duplicate_prob)) {
      env_->stats().messages_duplicated.fetch_add(1);
      copies = 2;
    }
    if (plan.reorder_jitter_ms > 0) {
      delay_ms += rng_.NextDouble() * plan.reorder_jitter_ms;
    }
  }
  hist_delivery_ms_->Record(delay_ms);

  Packet p{from, to, std::move(wire)};
  double scale = env_->time_scale();
  for (int c = 0; c < copies; ++c) {
    Packet copy = (c == copies - 1) ? std::move(p) : p;
    if (scale <= 0.0 || delay_ms <= 0.0) {
      Deliver(std::move(copy));
      continue;
    }
    uint64_t due = env_->ElapsedRealNs() +
                   static_cast<uint64_t>(delay_ms * scale * 1e6);
    audit::LockGuard lk(mu_);
    schedule_.push(Scheduled{due, next_seq_++, std::move(copy)});
    cv_.notify_all();
  }
}

void SimNetwork::Deliver(Packet p) {
  std::shared_ptr<Mailbox> mb;
  {
    audit::LockGuard lk(mu_);
    auto it = endpoints_.find(p.to);
    if (it == endpoints_.end()) return;  // dead host: packet lost
    mb = it->second;
  }
  mb->Push(std::move(p));
}

void SimNetwork::DeliveryLoop() {
  audit::UniqueLock lk(mu_);
  while (!stop_) {
    if (schedule_.empty()) {
      cv_.wait(lk, [&] {
        mu_.AssertHeld();
        return stop_ || !schedule_.empty();
      });
      continue;
    }
    uint64_t now = env_->ElapsedRealNs();
    const Scheduled& top = schedule_.top();
    if (top.due_real_ns <= now) {
      Packet p = top.packet;
      schedule_.pop();
      lk.unlock();
      Deliver(std::move(p));
      lk.lock();
      continue;
    }
    uint64_t wait_ns = top.due_real_ns - now;
    cv_.wait_for(lk, std::chrono::nanoseconds(wait_ns));
  }
}

}  // namespace msplog
