// SimNetwork — in-process unreliable messaging between named endpoints.
//
// Models the paper's networking assumptions (§2.1): communication is
// unreliable (messages may be lost, duplicated, or arrive out of order) and
// has a configurable one-way latency plus a 100 Mbps bandwidth term. Crashed
// processes unregister their endpoint; messages addressed to them vanish,
// exactly like packets sent to a dead host.
//
// Latencies are model milliseconds realized through SimEnvironment. With
// time_scale = 0 delivery is immediate (but drop/duplicate faults still
// apply), so unit tests of the retry logic run instantly.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "audit/mutex.h"
#include "common/bytes.h"
#include "common/mpsc_queue.h"
#include "common/rng.h"
#include "common/status.h"
#include "sim/sim_env.h"

namespace msplog {

/// A message as it appears on the wire: opaque encoded bytes plus addressing.
struct Packet {
  std::string from;
  std::string to;
  Bytes wire;
};

/// Per-endpoint receive queue. Closed when the endpoint unregisters.
///
/// Hot-path shape: Push lands on a lock-free MPSC ring (the delivery thread
/// and every immediate-delivery sender are producers), so handing a packet
/// to an endpoint never contends with the consumer. The consumer (the
/// endpoint's receive loop) spins through TryPop and parks on an
/// eventcount-style sleep only when empty; producers pay a fence + relaxed
/// load to detect a sleeping consumer.
class Mailbox {
 public:
  /// Blocks until a packet arrives or the mailbox closes.
  /// Returns false when closed and drained.
  bool Pop(Packet* out);

  /// Blocks up to `timeout_real_ms`; returns false on timeout or close.
  bool PopWithTimeout(Packet* out, int64_t timeout_real_ms);

  void Push(Packet p);
  void Close();
  bool closed() const { return closed_.load(std::memory_order_acquire); }
  size_t size() const { return queue_.depth(); }

 private:
  MpscQueue<Packet> queue_{256, "mailbox.overflow"};
  std::atomic<bool> closed_{false};
  std::atomic<int> sleepers_{0};
  mutable audit::Mutex mu_{"mailbox"};
  audit::CondVar cv_;
};

/// Probabilistic fault injection for a link (directed).
struct FaultPlan {
  double drop_prob = 0.0;
  double duplicate_prob = 0.0;
  /// Extra uniform delay in [0, reorder_jitter_ms) per message; with nonzero
  /// jitter, messages can overtake one another.
  double reorder_jitter_ms = 0.0;
};

class SimNetwork {
 public:
  explicit SimNetwork(SimEnvironment* env, uint64_t seed = 7);
  ~SimNetwork();

  /// Register a named endpoint; returns its mailbox (owned by the network).
  std::shared_ptr<Mailbox> Register(const std::string& name);

  /// Unregister (crash / shutdown): closes the mailbox; in-flight and future
  /// packets to this endpoint are dropped.
  void Unregister(const std::string& name);

  /// Send `wire` from `from` to `to`. Applies link latency, bandwidth and
  /// fault plan. Returns immediately (delivery is asynchronous).
  void Send(const std::string& from, const std::string& to, Bytes wire);

  /// Symmetric one-way latency override for the {a, b} pair.
  void SetLinkLatency(const std::string& a, const std::string& b,
                      double one_way_ms);
  void set_default_one_way_ms(double ms) {
    audit::LockGuard lk(mu_);
    default_one_way_ms_ = ms;
  }
  double default_one_way_ms() const {
    audit::LockGuard lk(mu_);
    return default_one_way_ms_;
  }
  void set_bandwidth_mbps(double mbps) {
    audit::LockGuard lk(mu_);
    bandwidth_mbps_ = mbps;
  }

  /// Fault plan for the directed link from → to (overrides the default).
  void SetFaults(const std::string& from, const std::string& to,
                 FaultPlan plan);
  void SetDefaultFaults(FaultPlan plan) {
    audit::LockGuard lk(mu_);
    default_faults_ = plan;
  }
  void ClearFaults();

  /// One-way model latency for a pair including bandwidth for `bytes`.
  double OneWayMs(const std::string& a, const std::string& b,
                  size_t bytes) const;

  void Shutdown();

 private:
  struct Scheduled {
    uint64_t due_real_ns;
    uint64_t seq;  // FIFO tiebreaker
    Packet packet;
    bool operator>(const Scheduled& o) const {
      if (due_real_ns != o.due_real_ns) return due_real_ns > o.due_real_ns;
      return seq > o.seq;
    }
  };

  void DeliveryLoop();
  void Deliver(Packet p) EXCLUDES(mu_);
  const FaultPlan& FaultsFor(const std::string& from,
                             const std::string& to) const REQUIRES(mu_);

  SimEnvironment* env_;
  /// Model one-way delay per delivered message ("net.delivery_ms").
  obs::Histogram* hist_delivery_ms_;

  mutable audit::Mutex mu_{"sim_network"};
  audit::CondVar cv_;
  double default_one_way_ms_ GUARDED_BY(mu_) = 0.0;
  double bandwidth_mbps_ GUARDED_BY(mu_) = 100.0;
  FaultPlan default_faults_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
  uint64_t next_seq_ GUARDED_BY(mu_) = 0;
  std::map<std::string, std::shared_ptr<Mailbox>> endpoints_
      GUARDED_BY(mu_);
  std::map<std::pair<std::string, std::string>, double> link_latency_
      GUARDED_BY(mu_);
  std::map<std::pair<std::string, std::string>, FaultPlan> faults_
      GUARDED_BY(mu_);
  std::priority_queue<Scheduled, std::vector<Scheduled>, std::greater<>>
      schedule_ GUARDED_BY(mu_);
  Rng rng_ GUARDED_BY(mu_);
  std::thread delivery_thread_;
};

}  // namespace msplog
