#include "audit/mutex.h"
#include "sim/sim_disk.h"

#include <algorithm>

namespace msplog {

SimDisk::SimDisk(SimEnvironment* env, std::string name, DiskGeometry geometry,
                 uint64_t seed)
    : env_(env), name_(std::move(name)), geometry_(geometry), rng_(seed) {
  hist_write_ms_ = env_->metrics().GetHistogram("disk.write_ms");
  hist_read_ms_ = env_->metrics().GetHistogram("disk.read_ms");
}

void SimDisk::ChargeWrite(uint64_t bytes) {
  uint64_t sectors =
      (bytes + geometry_.sector_bytes - 1) / geometry_.sector_bytes;
  if (sectors == 0) sectors = 1;
  env_->stats().disk_flushes.fetch_add(1);
  env_->stats().disk_sectors_written.fetch_add(sectors);
  if (!charge_latency_) return;
  double ms = geometry_.WriteLatencyMs(sectors);
  {
    audit::LockGuard lk(rng_mu_);
    if (rng_.Chance(geometry_.os_interference_prob)) {
      ms += geometry_.write_avg_seek_ms;
    }
  }
  hist_write_ms_->Record(ms);
  audit::LockGuard io(io_mu_);
  env_->SleepModelMs(ms);
}

void SimDisk::ChargeRead(uint64_t bytes) {
  uint64_t sectors =
      (bytes + geometry_.sector_bytes - 1) / geometry_.sector_bytes;
  if (sectors == 0) sectors = 1;
  env_->stats().disk_reads.fetch_add(1);
  env_->stats().disk_sectors_read.fetch_add(sectors);
  if (!charge_latency_) return;
  double ms = geometry_.ReadLatencyMs(sectors);
  {
    audit::LockGuard lk(rng_mu_);
    if (rng_.Chance(geometry_.os_interference_prob)) {
      ms += geometry_.read_avg_seek_ms;
    }
  }
  hist_read_ms_->Record(ms);
  audit::LockGuard io(io_mu_);
  env_->SleepModelMs(ms);
}

void SimDisk::Barrier(uint64_t sectors) {
  ChargeWrite(sectors * geometry_.sector_bytes);
}

Status SimDisk::WriteAt(const std::string& file, uint64_t offset,
                        ByteView data) {
  ChargeWrite(data.size());
  {
    audit::LockGuard lk(state_mu_);
    Bytes& f = files_[file];
    if (f.size() < offset) f.resize(offset, '\0');
    if (f.size() < offset + data.size()) f.resize(offset + data.size(), '\0');
    f.replace(offset, data.size(), data.data(), data.size());
    env_->stats().disk_bytes_written.fetch_add(data.size());
  }
  NotifyCompletion(file, offset, data.size());
  return Status::OK();
}

Status SimDisk::Append(const std::string& file, ByteView data) {
  ChargeWrite(data.size());
  uint64_t offset = 0;
  {
    audit::LockGuard lk(state_mu_);
    Bytes& f = files_[file];
    offset = f.size();
    f.append(data.data(), data.size());
    env_->stats().disk_bytes_written.fetch_add(data.size());
  }
  NotifyCompletion(file, offset, data.size());
  return Status::OK();
}

int SimDisk::AddCompletionHook(DiskCompletionHook hook) {
  audit::LockGuard lk(hooks_mu_);
  int id = next_hook_id_++;
  completion_hooks_[id] = std::move(hook);
  return id;
}

void SimDisk::RemoveCompletionHook(int id) {
  audit::LockGuard lk(hooks_mu_);
  completion_hooks_.erase(id);
}

void SimDisk::NotifyCompletion(const std::string& file, uint64_t offset,
                               uint64_t bytes) {
  // Snapshot the hooks so they run with no disk locks held — a hook is
  // allowed to take its owner's lock and even issue further disk calls.
  std::vector<DiskCompletionHook> hooks;
  {
    audit::LockGuard lk(hooks_mu_);
    if (completion_hooks_.empty()) return;
    hooks.reserve(completion_hooks_.size());
    for (const auto& [id, h] : completion_hooks_) hooks.push_back(h);
  }
  DiskCompletion info{&file, offset, bytes};
  for (const auto& h : hooks) h(info);
}

Status SimDisk::ReadAt(const std::string& file, uint64_t offset, uint64_t n,
                       Bytes* out) {
  {
    audit::LockGuard lk(state_mu_);
    auto it = files_.find(file);
    if (it == files_.end()) return Status::NotFound("no such file: " + file);
    const Bytes& f = it->second;
    if (offset >= f.size()) {
      out->clear();
    } else {
      uint64_t take = std::min<uint64_t>(n, f.size() - offset);
      out->assign(f.data() + offset, take);
    }
  }
  ChargeRead(out->size());
  return Status::OK();
}

Status SimDisk::Truncate(const std::string& file, uint64_t size) {
  ChargeWrite(1);
  audit::LockGuard lk(state_mu_);
  Bytes& f = files_[file];
  f.resize(size, '\0');
  return Status::OK();
}

Status SimDisk::PunchHole(const std::string& file, uint64_t offset,
                          uint64_t length) {
  ChargeWrite(1);
  audit::LockGuard lk(state_mu_);
  auto it = files_.find(file);
  if (it == files_.end()) return Status::NotFound("no such file: " + file);
  Bytes& f = it->second;
  if (offset >= f.size() || length == 0) return Status::OK();
  uint64_t n = std::min<uint64_t>(length, f.size() - offset);
  std::fill(f.begin() + offset, f.begin() + offset + n, '\0');
  env_->stats().disk_bytes_reclaimed.fetch_add(n);
  return Status::OK();
}

Status SimDisk::Delete(const std::string& file) {
  audit::LockGuard lk(state_mu_);
  auto it = files_.find(file);
  if (it == files_.end()) return Status::NotFound("no such file: " + file);
  files_.erase(it);
  return Status::OK();
}

bool SimDisk::Exists(const std::string& file) const {
  audit::LockGuard lk(state_mu_);
  return files_.count(file) > 0;
}

uint64_t SimDisk::FileSize(const std::string& file) const {
  audit::LockGuard lk(state_mu_);
  auto it = files_.find(file);
  return it == files_.end() ? 0 : it->second.size();
}

std::vector<std::string> SimDisk::ListFiles() const {
  audit::LockGuard lk(state_mu_);
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [k, v] : files_) out.push_back(k);
  return out;
}

void SimDisk::Format() {
  audit::LockGuard lk(state_mu_);
  files_.clear();
}

}  // namespace msplog
