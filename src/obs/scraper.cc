#include "obs/scraper.h"

#include <chrono>
#include <cstdio>

#include "obs/metrics.h"

namespace msplog {
namespace obs {

TimeSeriesRing::TimeSeriesRing(size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity) {}

void TimeSeriesRing::Push(double t_ms, double value) {
  ring_[next_] = Sample{t_ms, value};
  next_ = (next_ + 1) % ring_.size();
  ++total_;
}

std::vector<TimeSeriesRing::Sample> TimeSeriesRing::Samples() const {
  std::vector<Sample> out;
  size_t n = size();
  out.reserve(n);
  // Oldest retained sample sits at next_ once the ring has wrapped.
  size_t start = (total_ >= ring_.size()) ? next_ : 0;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

TimeSeriesRing::Sample TimeSeriesRing::Latest() const {
  if (total_ == 0) return Sample{};
  return ring_[(next_ + ring_.size() - 1) % ring_.size()];
}

MetricsScraper::MetricsScraper(MetricsRegistry* registry,
                               std::function<double()> now_ms)
    : MetricsScraper(registry, std::move(now_ms), Options()) {}

MetricsScraper::MetricsScraper(MetricsRegistry* registry,
                               std::function<double()> now_ms,
                               Options options)
    : registry_(registry), now_ms_(std::move(now_ms)),
      options_(std::move(options)) {}

MetricsScraper::~MetricsScraper() { Stop(); }

void MetricsScraper::AddProbeLocked(const std::string& name,
                                    const char* prom_type,
                                    std::function<double()> read) {
  mu_.AssertHeld();
  for (const auto& p : probes_) {
    if (p->name == name) return;  // already watched
  }
  probes_.push_back(std::make_unique<Probe>(name, prom_type, std::move(read),
                                            options_.ring_capacity));
}

void MetricsScraper::WatchCounter(const std::string& name) {
  Counter* c = registry_->GetCounter(name);
  audit::LockGuard lk(mu_);
  AddProbeLocked(name, "counter",
                 [c] { return static_cast<double>(c->Value()); });
}

void MetricsScraper::WatchGauge(const std::string& name) {
  Gauge* g = registry_->GetGauge(name);
  audit::LockGuard lk(mu_);
  AddProbeLocked(name, "gauge",
                 [g] { return static_cast<double>(g->Value()); });
}

void MetricsScraper::WatchHistogram(const std::string& name) {
  Histogram* h = registry_->GetHistogram(name);
  audit::LockGuard lk(mu_);
  AddProbeLocked(name + ".count", "counter",
                 [h] { return static_cast<double>(h->Count()); });
  AddProbeLocked(name + ".mean", "gauge", [h] { return h->Snap().Mean(); });
  AddProbeLocked(name + ".p99", "gauge", [h] { return h->Snap().P99(); });
}

void MetricsScraper::WatchAllRegistered() {
  MetricsRegistry::RegistrySnapshot snap = registry_->Snap();
  for (const auto& [name, _] : snap.counters) WatchCounter(name);
  for (const auto& [name, _] : snap.gauges) WatchGauge(name);
  for (const auto& [name, _] : snap.histograms) WatchHistogram(name);
}

void MetricsScraper::AddProbe(const std::string& name,
                              std::function<double()> read) {
  audit::LockGuard lk(mu_);
  AddProbeLocked(name, "gauge", std::move(read));
}

void MetricsScraper::AnnotateEpoch(double t_ms, const std::string& label) {
  audit::LockGuard lk(mu_);
  epoch_marks_.push_back(EpochMark{t_ms, label});
  while (epoch_marks_.size() > kMaxEpochMarks) epoch_marks_.pop_front();
}

std::vector<MetricsScraper::EpochMark> MetricsScraper::EpochMarks() const {
  audit::LockGuard lk(mu_);
  return std::vector<EpochMark>(epoch_marks_.begin(), epoch_marks_.end());
}

void MetricsScraper::Start() {
  audit::LockGuard lifecycle(lifecycle_mu_);
  {
    audit::LockGuard lk(mu_);
    if (running_) return;
    stop_ = false;
    running_ = true;
  }
  thread_ = std::thread(&MetricsScraper::Loop, this);
}

void MetricsScraper::Stop() {
  audit::LockGuard lifecycle(lifecycle_mu_);
  {
    audit::LockGuard lk(mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  audit::LockGuard lk(mu_);
  running_ = false;
  stop_ = false;
}

bool MetricsScraper::running() const {
  audit::LockGuard lk(mu_);
  return running_;
}

void MetricsScraper::SampleNow() {
  double now = now_ms_();
  audit::LockGuard lk(mu_);
  SampleLocked(now);
}

void MetricsScraper::SampleLocked(double now) {
  mu_.AssertHeld();
  for (auto& p : probes_) {
    p->ring.Push(now, p->read());
  }
  samples_.fetch_add(1, std::memory_order_relaxed);
}

void MetricsScraper::Loop() {
  audit::UniqueLock lk(mu_);
  while (!stop_) {
    SampleLocked(now_ms_());
    cv_.wait_for(lk,
                 std::chrono::duration<double, std::milli>(options_.period_ms),
                 [this] {
                   mu_.AssertHeld();
                   return stop_;
                 });
  }
}

std::vector<std::string> MetricsScraper::SeriesNames() const {
  audit::LockGuard lk(mu_);
  std::vector<std::string> out;
  out.reserve(probes_.size());
  for (const auto& p : probes_) out.push_back(p->name);
  return out;
}

bool MetricsScraper::Series(const std::string& name,
                            std::vector<TimeSeriesRing::Sample>* out) const {
  audit::LockGuard lk(mu_);
  for (const auto& p : probes_) {
    if (p->name == name) {
      *out = p->ring.Samples();
      return true;
    }
  }
  return false;
}

uint64_t MetricsScraper::SeriesTotalPushed(const std::string& name) const {
  audit::LockGuard lk(mu_);
  for (const auto& p : probes_) {
    if (p->name == name) return p->ring.total_pushed();
  }
  return 0;
}

namespace {

/// Prometheus metric names admit [a-zA-Z_:][a-zA-Z0-9_:]*.
std::string PromName(const std::string& prefix, const std::string& name) {
  std::string out = prefix.empty() ? "" : prefix + "_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out = "_" + out;
  return out;
}

std::string FmtValue(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::string MetricsScraper::DumpPrometheus() const {
  audit::LockGuard lk(mu_);
  std::string out;
  // Crash/recovery epoch marks ride along as comments: Prometheus ignores
  // them, humans reading the exposition see why a series went flat.
  for (const auto& m : epoch_marks_) {
    out += "# EPOCH " + FmtValue(m.t_ms) + "ms " + m.label + "\n";
  }
  for (const auto& p : probes_) {
    if (p->ring.total_pushed() == 0) continue;
    std::string name = PromName(options_.prefix, p->name);
    out += "# TYPE " + name + " " + p->prom_type + "\n";
    out += name + " " + FmtValue(p->ring.Latest().value) + "\n";
  }
  return out;
}

std::string MetricsScraper::DumpJson() const {
  audit::LockGuard lk(mu_);
  char head[128];
  std::snprintf(head, sizeof(head),
                "{\"period_ms\":%.3f,\"ring_capacity\":%zu,"
                "\"samples_taken\":%llu,\"epoch_marks\":[",
                options_.period_ms, options_.ring_capacity,
                static_cast<unsigned long long>(
                    samples_.load(std::memory_order_relaxed)));
  std::string out = head;
  bool first = true;
  for (size_t i = 0; i < epoch_marks_.size(); ++i) {
    if (i) out += ",";
    out += "{\"t_ms\":" + FmtValue(epoch_marks_[i].t_ms) + ",\"label\":\"" +
           JsonEscape(epoch_marks_[i].label) + "\"}";
  }
  out += "],\"series\":{";
  for (const auto& p : probes_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(p->name) + "\":{\"total_pushed\":" +
           std::to_string(p->ring.total_pushed()) + ",\"points\":[";
    std::vector<TimeSeriesRing::Sample> pts = p->ring.Samples();
    for (size_t i = 0; i < pts.size(); ++i) {
      if (i) out += ",";
      out += "[" + FmtValue(pts[i].t_ms) + "," + FmtValue(pts[i].value) + "]";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

}  // namespace obs
}  // namespace msplog
