// Tail-latency attribution — walk the EventTracer's span-tagged events and
// explain where slow requests spent their time.
//
// Every client call is one trace (the endpoint allocates a fresh trace_id
// per call, rpc/client_endpoint.cc), so a trace's timeline is:
//
//   kClientCallStart ... kEnqueue -> kDequeue -> kExecStart -> kExecEnd
//     -> [kDistFlushStart/End]* -> kReplySent ... kClientCallEnd
//
// The walker classifies each slow trace's duration into buckets:
//   queue_wait    first dequeue minus first enqueue at the root MSP
//   exec          service-method execution (includes nested calls and the
//                 flushes *they* forced — downstream cost belongs to exec)
//   local_flush   reply-path distributed flushes that settled without
//                 launching a remote leg (log-force only)
//   remote_flush  reply-path distributed flushes that launched or joined at
//                 least one remote flight
//   net_resend    client-visible time outside the server window (network
//                 transit, busy-reply backoff, resend waits)
//   other         bookkeeping gaps (dequeue-to-exec, flush-to-reply, ...)
//
// Traces whose start/end or enqueue events were overwritten by the bounded
// tracer ring are counted as incomplete and skipped, never guessed at.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace msplog {
namespace obs {

struct TailBlameReport {
  double threshold_ms = 0;       ///< traces at or above this are "slow"
  uint64_t traces_total = 0;     ///< complete client-rooted traces seen
  uint64_t traces_slow = 0;      ///< of those, at/above the threshold
  uint64_t traces_incomplete = 0;  ///< skipped (ring overwrote their events)

  // Sums over the slow traces, model milliseconds.
  double total_ms = 0;
  double queue_wait_ms = 0;
  double exec_ms = 0;
  double local_flush_ms = 0;
  double remote_flush_ms = 0;
  double net_resend_ms = 0;
  double other_ms = 0;

  /// Bucket shares as fractions of total_ms (0 when no slow traces).
  double Share(double bucket_ms) const {
    return total_ms > 0 ? bucket_ms / total_ms : 0;
  }

  /// {"threshold_ms":..,"traces_total":..,...,"buckets":{...}}
  std::string ToJson() const;
};

/// Attribute every complete trace with duration >= `threshold_ms`.
TailBlameReport AttributeTailLatency(const std::vector<TraceEvent>& events,
                                     double threshold_ms);

/// Threshold = the `q` quantile (e.g. 0.99) of complete trace durations;
/// with fewer than 2 complete traces the report is empty but well-formed.
TailBlameReport AttributeTailQuantile(const std::vector<TraceEvent>& events,
                                      double q);

}  // namespace obs
}  // namespace msplog
