// OutageReport — the product of the outage observatory's recovery-side join.
//
// When an Msp restarts after a crash, msp/msp_recovery.cc correlates the
// flight recorder's frozen pre-crash bundle (obs/flight_recorder.h) with the
// analysis scan and per-session replays to answer, per session that was in
// flight at the fault:
//
//   fate "replayed"      the session had durable log records and replay
//                        reconstructed it cleanly;
//   fate "orphaned"      replay had to cut an orphan suffix (EOS written,
//                        positions truncated — §4.1) before the session was
//                        servable again;
//   fate "never-logged"  the bundle says the session was in flight but the
//                        durable log holds no trace of it: its work is lost
//                        and only duplicate detection will save the client;
//   fate "pending"       the join has seeded the entry but the session's
//                        replay has not finished yet (complete == false).
//
// time_to_servable is the per-session MTTR the REDO-only instant-restart
// literature argues for: model ms from the freeze (the fault) until that
// session could process a request again. The report aggregates them into
// MTTR percentiles. Like every obs type this is plain data with a JSON
// dump; the schema is validated by scripts/check_bench_json.py and
// documented in docs/OBSERVABILITY.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace msplog {
namespace obs {

struct OutageReport {
  struct SessionFate {
    std::string session_id;
    std::string fate = "pending";
    bool was_in_flight = true;     ///< false: surfaced by the scan only
    double servable_at_ms = 0;     ///< model time the session became servable
    double time_to_servable_ms = 0;  ///< servable_at - crash freeze
    uint64_t requests_replayed = 0;
  };

  struct Mttr {
    uint64_t count = 0;  ///< resolved sessions aggregated below
    double mean_ms = 0;
    double p50_ms = 0;
    double p90_ms = 0;
    double p99_ms = 0;
    double max_ms = 0;
  };

  bool valid = false;     ///< false = no crash bundle was joined yet
  bool complete = false;  ///< every fate resolved (none "pending")
  uint64_t generation = 0;  ///< crash generation of the joined bundle
  uint32_t epoch = 0;       ///< recovery epoch that performed the join
  double crash_model_ms = 0;     ///< bundle freeze time
  double recovery_start_ms = 0;  ///< analysis scan start
  double recovery_end_ms = 0;    ///< last fate resolution
  std::vector<SessionFate> sessions;
  Mttr mttr;

  SessionFate* Find(const std::string& session_id);
  const SessionFate* Find(const std::string& session_id) const;

  /// Recompute mttr / complete / recovery_end from the fates. Percentiles
  /// are nearest-rank over the resolved sessions' time_to_servable.
  void Finalize();

  std::string ToJson() const;
};

}  // namespace obs
}  // namespace msplog
