#include "obs/recovery_timeline.h"

#include <cstdio>

#include "obs/metrics.h"  // JsonEscape

namespace msplog {
namespace obs {

std::string RecoveryTimeline::ToJson() const {
  char buf[576];
  snprintf(buf, sizeof(buf),
           "{\"epoch\":%u,\"started_ms\":%.6g,\"analysis_scan_ms\":%.6g,"
           "\"analysis_records_scanned\":%llu,\"analysis_bytes_scanned\":%llu,"
           "\"post_scan_checkpoint_ms\":%.6g,\"open_for_traffic_ms\":%.6g,"
           "\"sessions_to_recover\":%llu,"
           "\"max_parallel_replays\":%u,\"orphan_events\":%llu,"
           "\"on_demand_replays\":%llu,"
           "\"total_replay_ms\":%.6g,\"msp_checkpoint_lsn\":%llu,"
           "\"scan_start_lsn\":%llu,\"scan_end_lsn\":%llu,"
           "\"session_replays\":[",
           epoch, started_model_ms, analysis_scan_ms,
           static_cast<unsigned long long>(analysis_records_scanned),
           static_cast<unsigned long long>(analysis_bytes_scanned),
           post_scan_checkpoint_ms, open_for_traffic_ms,
           static_cast<unsigned long long>(sessions_to_recover),
           max_parallel_replays, static_cast<unsigned long long>(orphan_events),
           static_cast<unsigned long long>(on_demand_replays),
           TotalReplayMs(), static_cast<unsigned long long>(msp_checkpoint_lsn),
           static_cast<unsigned long long>(scan_start_lsn),
           static_cast<unsigned long long>(scan_end_lsn));
  std::string out = buf;
  bool first = true;
  for (const auto& r : session_replays) {
    if (!first) out += ",";
    first = false;
    snprintf(buf, sizeof(buf),
             "\"replay_ms\":%.6g,\"requests_replayed\":%llu,\"rounds\":%u,"
             "\"from_crash\":%s,\"converged\":%s}",
             r.replay_ms, static_cast<unsigned long long>(r.requests_replayed),
             r.rounds, r.from_crash ? "true" : "false",
             r.converged ? "true" : "false");
    out += "{\"session\":\"" + JsonEscape(r.session_id) + "\"," + buf;
  }
  out += "],\"provenance\":[";
  first = true;
  for (const auto& p : provenance) {
    if (!first) out += ",";
    first = false;
    snprintf(buf, sizeof(buf),
             "\"session_checkpoint_lsn\":%llu,\"msp_checkpoint_lsn\":%llu,"
             "\"log_records_consumed\":%llu,\"records\":[",
             static_cast<unsigned long long>(p.session_checkpoint_lsn),
             static_cast<unsigned long long>(p.msp_checkpoint_lsn),
             static_cast<unsigned long long>(p.log_records_consumed));
    out += "{\"session\":\"" + JsonEscape(p.session_id) + "\"," + buf;
    bool rfirst = true;
    for (const auto& rr : p.records) {
      if (!rfirst) out += ",";
      rfirst = false;
      snprintf(buf, sizeof(buf), "{\"epoch\":%u,\"seqno\":%llu,\"lsn\":%llu}",
               rr.epoch, static_cast<unsigned long long>(rr.seqno),
               static_cast<unsigned long long>(rr.lsn));
      out += buf;
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace obs
}  // namespace msplog
