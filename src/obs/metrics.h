// Observability metrics — process-wide named counters, gauges and
// log-bucketed latency histograms.
//
// Design constraints (this is the measurement substrate the perf PRs report
// against, so it must not perturb what it measures):
//
//   * hot-path cost is one relaxed atomic RMW per Record/Add — no locks, no
//     allocation, no branches beyond the bucket computation;
//   * histograms use HDR-style log buckets (32 sub-buckets per power of two
//     of microseconds → ≤ 1/32 ≈ 3% relative quantile error) so p50/p90/p99
//     are meaningful from sub-microsecond appends to multi-second recoveries
//     without per-sample storage;
//   * snapshots are plain values: merge-able across histograms (multi-MSP
//     aggregation) and subtract-able (per-benchmark-phase deltas);
//   * registry handles are stable pointers — look up once, record forever.
//
// All values recorded are MODEL milliseconds (or unitless sizes/counts; a
// histogram does not care). The registry lives in SimEnvironment, so every
// component that can sleep can also measure.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "audit/mutex.h"

namespace msplog {
namespace obs {

/// Monotonic event counter.
class Counter {
 public:
  void Add(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Instantaneous signed level (queue depths, active workers, ...).
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Log-bucketed latency/size histogram.
///
/// A recorded value v (model ms) is quantized to microseconds and binned:
/// values below 32 µs get one bucket per microsecond; above that, 32
/// sub-buckets per power of two. Bucket boundaries are static functions so
/// tests can verify them directly.
class Histogram {
 public:
  static constexpr size_t kSubBuckets = 32;      // per power of two
  static constexpr size_t kDecades = 40;         // covers ~2^44 µs ≈ 5 hours
  static constexpr size_t kNumBuckets = kSubBuckets * kDecades;

  /// Bucket index for a value in model milliseconds.
  static size_t BucketIndex(double value_ms);
  /// Inclusive lower / exclusive upper bound of bucket `i`, in model ms.
  static double BucketLowerMs(size_t i);
  static double BucketUpperMs(size_t i);

  /// Plain-value copy; merge-able and subtract-able.
  struct Snapshot {
    uint64_t count = 0;
    double sum = 0;
    double min = 0;  ///< meaningless when count == 0
    double max = 0;
    std::array<uint64_t, kNumBuckets> buckets{};

    double Mean() const { return count ? sum / static_cast<double>(count) : 0; }
    /// Quantile estimate via linear interpolation inside the owning bucket,
    /// clamped to the observed [min, max]. q in [0, 1].
    double Quantile(double q) const;
    double P50() const { return Quantile(0.50); }
    double P90() const { return Quantile(0.90); }
    double P99() const { return Quantile(0.99); }

    /// Pointwise sum (aggregate several histograms / processes).
    void Merge(const Snapshot& other);
    /// Counts/sum since `before` (a prior snapshot of the SAME histogram).
    /// min/max are kept from *this — a delta cannot reconstruct them.
    Snapshot Delta(const Snapshot& before) const;
  };

  void Record(double value_ms);
  Snapshot Snap() const;
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0};
  std::atomic<double> min_{1e300};
  std::atomic<double> max_{-1e300};
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
};

/// Format a snapshot as a JSON object:
/// {"count":N,"mean":..,"p50":..,"p90":..,"p99":..,"max":..,"min":..}
std::string SnapshotJson(const Histogram::Snapshot& s);

/// Named registry. Get* interns the name on first use and returns a pointer
/// that stays valid for the registry's lifetime; the fast path after interning
/// is the metric's own relaxed atomic.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Plain-value copy of everything, for reporting.
  struct RegistrySnapshot {
    std::map<std::string, uint64_t> counters;
    std::map<std::string, int64_t> gauges;
    std::map<std::string, Histogram::Snapshot> histograms;
  };
  RegistrySnapshot Snap() const;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string ToJson() const;

 private:
  mutable audit::Mutex mu_{"obs.metrics"};
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GUARDED_BY(mu_);
};

/// JSON string escaping shared by the obs dump paths.
std::string JsonEscape(const std::string& s);

}  // namespace obs
}  // namespace msplog
