// FlightRecorder — the crash black box of the observatory.
//
// An always-on, fixed-capacity ring of the most recent "interesting moments"
// on the request path (requests picked up, distributed-flush legs, DV/log
// appends, invariant firings, crash/recovery transitions). The ring is owned
// by SimEnvironment — like the scraper rings — so it survives Msp
// crash/recovery cycles; recording is one short critical section with no
// allocation beyond the strings the caller already built.
//
// At a simulated crash (Msp::Crash) or any audit invariant violation the
// recorder *freezes* a generation-stamped snapshot bundle: a copy of the
// ring plus, per registered server, a statusz JSON dump, the in-flight
// session set, and the log tail extent (end/durable LSNs), plus the tail of
// the environment's event tracer and a summary of the locks held by the
// freezing thread. Bundles are bounded (oldest evicted) and immutable; the
// live ring keeps recording. The recovery-side join (msp/msp_recovery.cc)
// correlates the latest crash bundle with the replay to build the outage
// report (obs/outage_report.h), and tools/msplog_postmortem re-derives the
// same report offline from a dumped bundle plus the raw log image.
//
// Layering: like every obs component this file depends only on audit/ and
// injected callbacks — the environment passes its model clock, the tracer
// tail dump, and the held-lock summary; servers register opaque snapshot
// providers. scripts/lint_msplog.py enforces the boundary.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "audit/mutex.h"

namespace msplog {
namespace obs {

enum class FlightEventType : uint8_t {
  kRequest,    ///< a session worker picked up a request
  kFlushLeg,   ///< a distributed-flush leg launched or settled
  kDvUpdate,   ///< a log append moved a session DV / state number
  kInvariant,  ///< an audit invariant violation fired
  kCrash,      ///< a server crashed (simulated fault or injected)
  kRecovery,   ///< crash recovery started / finished
  kNote,       ///< free-form marker (tests, harness annotations)
};

const char* FlightEventTypeName(FlightEventType t);

struct FlightEvent {
  FlightEventType type = FlightEventType::kNote;
  double t_ms = 0;       ///< model time at record
  uint64_t seq = 0;      ///< global record order
  uint64_t seqno = 0;    ///< request seqno (0 = not applicable)
  std::string actor;     ///< server / component id
  std::string session;   ///< session id ("" = not applicable)
  std::string detail;    ///< free-form
};

/// Per-server context captured at freeze time by a registered provider.
struct FlightSnapshot {
  std::string statusz_json;  ///< the server's DumpStatusz() at the freeze
  /// Ids of sessions that were started but not ended when the snapshot was
  /// taken — the set the outage report must account for.
  std::vector<std::string> inflight_sessions;
  uint64_t log_end_lsn = 0;        ///< log tail extent (bytes appended)
  uint64_t log_durable_lsn = 0;    ///< durable prefix at the freeze
  uint64_t log_reclaimed_lsn = 0;  ///< reclaimed (punched) prefix
  uint64_t log_archived_lsn = 0;   ///< prefix preserved in archive segments
};

/// One frozen black-box bundle. Immutable once created.
struct FlightBundle {
  bool frozen = false;      ///< false = "no such bundle" sentinel
  uint64_t generation = 0;  ///< crash generation (0 for invariant freezes)
  std::string actor;        ///< crashed server id ("" = invariant trigger)
  std::string trigger;      ///< "crash" or "invariant:<name>"
  std::string detail;
  std::string held_locks;   ///< locks held by the freezing thread
  double frozen_at_ms = 0;
  std::vector<FlightEvent> events;  ///< ring copy, oldest first
  uint64_t events_dropped = 0;      ///< ring overwrites before the freeze
  std::string tracer_tail_json;     ///< tail of the environment tracer
  /// (server id, snapshot) — the crashed server only on a crash freeze,
  /// every registered server on an invariant freeze.
  std::vector<std::pair<std::string, FlightSnapshot>> snapshots;

  std::string ToJson() const;
};

class FlightRecorder {
 public:
  struct Options {
    size_t ring_capacity = 512;
    size_t max_bundles = 4;  ///< frozen bundles retained (oldest evicted)
  };

  /// `now_ms` supplies event timestamps (the environment passes NowModelMs);
  /// it must be callable until the recorder is destroyed. (Two overloads
  /// rather than a default argument: a nested-class NSDMI default is
  /// ill-formed in the enclosing class body.)
  explicit FlightRecorder(std::function<double()> now_ms);
  FlightRecorder(std::function<double()> now_ms, Options options);

  // --- environment wiring (set once at construction time) -----------------

  /// Dump callback for the tracer tail included in every bundle (may stay
  /// unset: bundles then carry "[]").
  void set_tracer_tail_dump(std::function<std::string()> dump);
  /// Callback describing the locks held by the calling thread (the
  /// environment passes the lock-order registry's held summary).
  void set_held_locks_dump(std::function<std::string()> dump);

  // --- server snapshot providers ------------------------------------------

  using SnapshotProvider = std::function<FlightSnapshot()>;
  /// Register / replace the snapshot provider for `actor`. The provider is
  /// invoked outside the recorder lock at freeze time; it must not call back
  /// into Freeze*.
  void SetSnapshotProvider(const std::string& actor, SnapshotProvider p);
  void ClearSnapshotProvider(const std::string& actor);

  // --- the hot path --------------------------------------------------------

  /// O(1), one short critical section; overwrites the oldest slot once full.
  void Record(FlightEventType type, const std::string& actor,
              const std::string& session = "", uint64_t seqno = 0,
              const std::string& detail = "");

  // --- freezing -------------------------------------------------------------

  /// Freeze a bundle for a crashing server: ring copy + that server's
  /// snapshot, stamped with its crash generation. Returns the bundle.
  FlightBundle FreezeOnCrash(const std::string& actor, uint64_t generation,
                             const std::string& detail = "");
  /// Freeze a bundle for an invariant violation: ring copy + a snapshot of
  /// every registered server. Reentrancy-guarded per thread (a provider that
  /// itself trips an invariant cannot recurse).
  void FreezeOnViolation(const std::string& invariant,
                         const std::string& detail);

  // --- inspection -----------------------------------------------------------

  /// Retained bundles, oldest first.
  std::vector<FlightBundle> Bundles() const;
  /// Most recent crash bundle whose actor is `actor`; frozen=false if none.
  FlightBundle LatestBundleFor(const std::string& actor) const;
  uint64_t frozen_count() const;
  uint64_t recorded_total() const;
  uint64_t dropped() const;
  /// Live ring contents, oldest first (allocates; dump/test path only).
  std::vector<FlightEvent> RingEvents() const;
  /// {"ring":{...},"bundles":[...]} — full recorder state.
  std::string DumpJson() const;

 private:
  FlightBundle BuildBundleLocked(const std::string& actor, uint64_t generation,
                                 const std::string& trigger,
                                 const std::string& detail) REQUIRES(mu_);
  std::vector<FlightEvent> RingEventsLocked() const REQUIRES(mu_);

  std::function<double()> now_ms_;
  Options options_;

  mutable audit::Mutex mu_{"obs.flight_recorder"};
  std::vector<FlightEvent> ring_ GUARDED_BY(mu_);  ///< capacity preallocated
  size_t next_ GUARDED_BY(mu_) = 0;    ///< overwrite cursor once full
  uint64_t total_ GUARDED_BY(mu_) = 0; ///< events ever recorded
  std::deque<FlightBundle> bundles_ GUARDED_BY(mu_);
  uint64_t frozen_total_ GUARDED_BY(mu_) = 0;
  std::map<std::string, SnapshotProvider> providers_ GUARDED_BY(mu_);
  std::function<std::string()> tracer_tail_dump_ GUARDED_BY(mu_);
  std::function<std::string()> held_locks_dump_ GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace msplog
