#include "obs/outage_report.h"

#include <algorithm>
#include <cstdio>

#include "obs/metrics.h"  // JsonEscape

namespace msplog {
namespace obs {

namespace {

std::string FmtMs(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

double NearestRank(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  size_t idx = static_cast<size_t>(q * static_cast<double>(sorted.size()));
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

}  // namespace

OutageReport::SessionFate* OutageReport::Find(const std::string& session_id) {
  for (auto& s : sessions) {
    if (s.session_id == session_id) return &s;
  }
  return nullptr;
}

const OutageReport::SessionFate* OutageReport::Find(
    const std::string& session_id) const {
  for (const auto& s : sessions) {
    if (s.session_id == session_id) return &s;
  }
  return nullptr;
}

void OutageReport::Finalize() {
  std::vector<double> ttrs;
  ttrs.reserve(sessions.size());
  bool pending = false;
  double last = recovery_start_ms;
  for (const auto& s : sessions) {
    if (s.fate == "pending") {
      pending = true;
      continue;
    }
    ttrs.push_back(s.time_to_servable_ms);
    last = std::max(last, s.servable_at_ms);
  }
  complete = valid && !pending;
  if (!ttrs.empty()) recovery_end_ms = std::max(recovery_end_ms, last);
  std::sort(ttrs.begin(), ttrs.end());
  mttr = Mttr{};
  mttr.count = ttrs.size();
  if (ttrs.empty()) return;
  double sum = 0;
  for (double v : ttrs) sum += v;
  mttr.mean_ms = sum / static_cast<double>(ttrs.size());
  mttr.p50_ms = NearestRank(ttrs, 0.50);
  mttr.p90_ms = NearestRank(ttrs, 0.90);
  mttr.p99_ms = NearestRank(ttrs, 0.99);
  mttr.max_ms = ttrs.back();
}

std::string OutageReport::ToJson() const {
  std::string out = "{";
  out += "\"valid\":" + std::string(valid ? "true" : "false") + ",";
  out += "\"complete\":" + std::string(complete ? "true" : "false") + ",";
  out += "\"generation\":" + std::to_string(generation) + ",";
  out += "\"epoch\":" + std::to_string(epoch) + ",";
  out += "\"crash_model_ms\":" + FmtMs(crash_model_ms) + ",";
  out += "\"recovery_start_ms\":" + FmtMs(recovery_start_ms) + ",";
  out += "\"recovery_end_ms\":" + FmtMs(recovery_end_ms) + ",";
  out += "\"sessions\":[";
  for (size_t i = 0; i < sessions.size(); ++i) {
    const SessionFate& s = sessions[i];
    if (i) out += ",";
    out += "{\"session\":\"" + JsonEscape(s.session_id) + "\",";
    out += "\"fate\":\"" + JsonEscape(s.fate) + "\",";
    out += "\"was_in_flight\":" +
           std::string(s.was_in_flight ? "true" : "false") + ",";
    out += "\"servable_at_ms\":" + FmtMs(s.servable_at_ms) + ",";
    out += "\"time_to_servable_ms\":" + FmtMs(s.time_to_servable_ms) + ",";
    out += "\"requests_replayed\":" + std::to_string(s.requests_replayed);
    out += "}";
  }
  out += "],";
  out += "\"mttr\":{\"count\":" + std::to_string(mttr.count) +
         ",\"mean_ms\":" + FmtMs(mttr.mean_ms) +
         ",\"p50_ms\":" + FmtMs(mttr.p50_ms) +
         ",\"p90_ms\":" + FmtMs(mttr.p90_ms) +
         ",\"p99_ms\":" + FmtMs(mttr.p99_ms) +
         ",\"max_ms\":" + FmtMs(mttr.max_ms) + "}";
  out += "}";
  return out;
}

}  // namespace obs
}  // namespace msplog
