#include "obs/session_stats.h"

#include <cinttypes>
#include <cstdio>

#include "obs/metrics.h"

namespace msplog {
namespace obs {

namespace {

void AtomicAddDouble(std::atomic<double>* a, double d) {
  double cur = a->load(std::memory_order_relaxed);
  while (!a->compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
  }
}

void AtomicMaxU64(std::atomic<uint64_t>* a, uint64_t v) {
  uint64_t cur = a->load(std::memory_order_relaxed);
  while (v > cur &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AppendU64(std::string* out, const char* key, uint64_t v,
               bool comma = true) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\":%" PRIu64 "%s", key, v,
                comma ? "," : "");
  *out += buf;
}

}  // namespace

void SessionStats::OnNestedCall(const std::string& peer, bool cross_domain) {
  nested_calls_.fetch_add(1, std::memory_order_relaxed);
  if (cross_domain) {
    cross_domain_calls_.fetch_add(1, std::memory_order_relaxed);
  }
  audit::LockGuard lk(peers_mu_);
  ++calls_by_peer_[peer];
}

void SessionStats::OnRequestFanout(uint64_t calls) {
  AtomicMaxU64(&max_request_fanout_, calls);
}

void SessionStats::OnFlushStall(double stall_ms) {
  flush_stalls_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&flush_stall_ms_, stall_ms);
}

void SessionStats::OnLogAppend(uint64_t framed_bytes) {
  log_records_.fetch_add(1, std::memory_order_relaxed);
  log_bytes_.fetch_add(framed_bytes, std::memory_order_relaxed);
}

SessionStatsSnapshot SessionStats::Snap(const std::string& session_id) const {
  SessionStatsSnapshot s;
  s.session_id = session_id;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.nested_calls = nested_calls_.load(std::memory_order_relaxed);
  s.max_request_fanout = max_request_fanout_.load(std::memory_order_relaxed);
  s.cross_domain_calls = cross_domain_calls_.load(std::memory_order_relaxed);
  s.flush_stalls = flush_stalls_.load(std::memory_order_relaxed);
  s.flush_stall_ms = flush_stall_ms_.load(std::memory_order_relaxed);
  s.log_records = log_records_.load(std::memory_order_relaxed);
  s.log_bytes = log_bytes_.load(std::memory_order_relaxed);
  s.forced_flushes = forced_flushes_.load(std::memory_order_relaxed);
  s.piggybacked_sends = piggybacked_sends_.load(std::memory_order_relaxed);
  s.checkpoints = checkpoints_.load(std::memory_order_relaxed);
  s.replays = replays_.load(std::memory_order_relaxed);
  s.dv_entries = dv_entries_.load(std::memory_order_relaxed);
  {
    audit::LockGuard lk(peers_mu_);
    s.calls_by_peer = calls_by_peer_;
  }
  return s;
}

std::string SessionStatsSnapshot::ToJson() const {
  std::string out = "{\"session\":\"" + JsonEscape(session_id) + "\",";
  AppendU64(&out, "requests", requests);
  AppendU64(&out, "nested_calls", nested_calls);
  AppendU64(&out, "max_request_fanout", max_request_fanout);
  AppendU64(&out, "cross_domain_calls", cross_domain_calls);
  AppendU64(&out, "flush_stalls", flush_stalls);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"flush_stall_ms\":%.3f,", flush_stall_ms);
  out += buf;
  AppendU64(&out, "log_records", log_records);
  AppendU64(&out, "log_bytes", log_bytes);
  AppendU64(&out, "forced_flushes", forced_flushes);
  AppendU64(&out, "piggybacked_sends", piggybacked_sends);
  AppendU64(&out, "checkpoints", checkpoints);
  AppendU64(&out, "replays", replays);
  AppendU64(&out, "dv_entries", dv_entries);
  out += "\"calls_by_peer\":{";
  bool first = true;
  for (const auto& [peer, n] : calls_by_peer) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(peer) + "\":" + std::to_string(n);
  }
  out += "}}";
  return out;
}

std::string SessionTelemetryJson(const std::vector<SessionStatsSnapshot>& v) {
  std::string out = "[";
  for (size_t i = 0; i < v.size(); ++i) {
    if (i) out += ",";
    out += v[i].ToJson();
  }
  out += "]";
  return out;
}

}  // namespace obs
}  // namespace msplog
