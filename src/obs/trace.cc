#include "audit/mutex.h"
#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <thread>

#include "obs/metrics.h"  // JsonEscape, Counter

namespace msplog {
namespace obs {

const char* TraceEventTypeName(TraceEventType t) {
  switch (t) {
    case TraceEventType::kEnqueue: return "Enqueue";
    case TraceEventType::kExecStart: return "ExecStart";
    case TraceEventType::kExecEnd: return "ExecEnd";
    case TraceEventType::kLocalFlushStart: return "LocalFlushStart";
    case TraceEventType::kLocalFlushEnd: return "LocalFlushEnd";
    case TraceEventType::kDistFlushStart: return "DistFlushStart";
    case TraceEventType::kDistFlushEnd: return "DistFlushEnd";
    case TraceEventType::kReplySent: return "ReplySent";
    case TraceEventType::kCheckpointBegin: return "CheckpointBegin";
    case TraceEventType::kCheckpointEnd: return "CheckpointEnd";
    case TraceEventType::kRecoveryStart: return "RecoveryStart";
    case TraceEventType::kAnalysisScanEnd: return "AnalysisScanEnd";
    case TraceEventType::kRecoveryEnd: return "RecoveryEnd";
    case TraceEventType::kReplayStart: return "ReplayStart";
    case TraceEventType::kReplayEnd: return "ReplayEnd";
    case TraceEventType::kOrphanDetected: return "OrphanDetected";
    case TraceEventType::kOrphanCut: return "OrphanCut";
    case TraceEventType::kDequeue: return "Dequeue";
    case TraceEventType::kClientCallStart: return "ClientCallStart";
    case TraceEventType::kClientCallEnd: return "ClientCallEnd";
    case TraceEventType::kFlushFlightLaunch: return "FlushFlightLaunch";
    case TraceEventType::kFlushLegJoin: return "FlushLegJoin";
  }
  return "?";
}

uint64_t NextSpanId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

namespace {

/// Chrome-tracing phase for an event: paired events become duration spans.
/// Returns 'B', 'E' or 'i', and the span name shared by the B/E pair.
char PhaseFor(TraceEventType t, const char** span_name) {
  switch (t) {
    case TraceEventType::kExecStart: *span_name = "exec"; return 'B';
    case TraceEventType::kExecEnd: *span_name = "exec"; return 'E';
    case TraceEventType::kLocalFlushStart: *span_name = "local_flush"; return 'B';
    case TraceEventType::kLocalFlushEnd: *span_name = "local_flush"; return 'E';
    case TraceEventType::kDistFlushStart: *span_name = "dist_flush"; return 'B';
    case TraceEventType::kDistFlushEnd: *span_name = "dist_flush"; return 'E';
    case TraceEventType::kCheckpointBegin: *span_name = "checkpoint"; return 'B';
    case TraceEventType::kCheckpointEnd: *span_name = "checkpoint"; return 'E';
    case TraceEventType::kRecoveryStart: *span_name = "crash_recovery"; return 'B';
    case TraceEventType::kRecoveryEnd: *span_name = "crash_recovery"; return 'E';
    case TraceEventType::kReplayStart: *span_name = "replay"; return 'B';
    case TraceEventType::kReplayEnd: *span_name = "replay"; return 'E';
    case TraceEventType::kClientCallStart: *span_name = "client_call"; return 'B';
    case TraceEventType::kClientCallEnd: *span_name = "client_call"; return 'E';
    default: *span_name = TraceEventTypeName(t); return 'i';
  }
}

}  // namespace

EventTracer::EventTracer(size_t capacity, size_t stripes) {
  if (stripes == 0) stripes = 1;
  per_stripe_ = std::max<size_t>(1, capacity / stripes);
  stripes_.reserve(stripes);
  for (size_t i = 0; i < stripes; ++i) {
    stripes_.push_back(std::make_unique<Stripe>(per_stripe_));
  }
}

void EventTracer::Record(TraceEventType type, double model_ms,
                         std::string actor, std::string session,
                         uint64_t seqno, std::string detail, SpanContext span) {
  if (!enabled()) return;
  TraceEvent e;
  e.type = type;
  e.model_ms = model_ms;
  e.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  e.seqno = seqno;
  e.actor = std::move(actor);
  e.session = std::move(session);
  e.detail = std::move(detail);
  e.span = span;

  size_t idx = std::hash<std::thread::id>{}(std::this_thread::get_id()) %
               stripes_.size();
  Stripe& st = *stripes_[idx];
  bool overwrote = false;
  {
    audit::LockGuard lk(st.mu);
    st.total++;
    if (st.ring.size() < per_stripe_) {
      st.ring.push_back(std::move(e));
    } else {
      st.ring[st.next] = std::move(e);
      st.next = (st.next + 1) % per_stripe_;
      overwrote = true;
    }
  }
  if (overwrote && drop_counter_) drop_counter_->Add(1);
}

std::vector<TraceEvent> EventTracer::Events() const {
  std::vector<TraceEvent> out;
  for (const auto& sp : stripes_) {
    audit::LockGuard lk(sp->mu);
    out.insert(out.end(), sp->ring.begin(), sp->ring.end());
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.seq < b.seq;
            });
  return out;
}

uint64_t EventTracer::dropped() const {
  uint64_t d = 0;
  for (const auto& sp : stripes_) {
    audit::LockGuard lk(sp->mu);
    d += sp->total - sp->ring.size();
  }
  return d;
}

void EventTracer::Clear() {
  for (const auto& sp : stripes_) {
    audit::LockGuard lk(sp->mu);
    sp->ring.clear();
    sp->next = 0;
    sp->total = 0;
  }
}

std::string EventTracer::DumpJson(size_t max_events) const {
  std::vector<TraceEvent> events = Events();
  if (max_events > 0 && events.size() > max_events) {
    events.erase(events.begin(),
                 events.end() - static_cast<ptrdiff_t>(max_events));
  }
  std::string out = "[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out += ",";
    first = false;
    char buf[128];
    snprintf(buf, sizeof(buf), "{\"type\":\"%s\",\"t_ms\":%.6f,\"seq\":%llu,",
             TraceEventTypeName(e.type), e.model_ms,
             static_cast<unsigned long long>(e.seq));
    out += buf;
    out += "\"actor\":\"" + JsonEscape(e.actor) + "\",";
    out += "\"session\":\"" + JsonEscape(e.session) + "\",";
    out += "\"seqno\":" + std::to_string(e.seqno) + ",";
    if (e.span.valid()) {
      out += "\"trace_id\":" + std::to_string(e.span.trace_id) + ",";
      out += "\"span_id\":" + std::to_string(e.span.span_id) + ",";
      out += "\"parent_span_id\":" + std::to_string(e.span.parent_span_id) +
             ",";
    }
    out += "\"detail\":\"" + JsonEscape(e.detail) + "\"}";
  }
  out += "]";
  return out;
}

std::string EventTracer::DumpChromeTracing() const {
  std::vector<TraceEvent> events = Events();
  // chrome://tracing wants integer pid/tid: intern actors as processes and
  // sessions as threads, and name them through metadata events.
  std::map<std::string, int> pids;
  std::map<std::pair<std::string, std::string>, int> tids;
  // Flow events draw one causal chain per trace_id: the first event of the
  // trace starts the flow (ph "s"), intermediates continue it ("t"), the
  // last finishes it ("f"). Events are already seq-ordered.
  std::map<uint64_t, std::pair<uint64_t, uint64_t>> flow_bounds;  // first/last seq
  for (const TraceEvent& e : events) {
    pids.emplace(e.actor, static_cast<int>(pids.size()) + 1);
    tids.emplace(std::make_pair(e.actor, e.session),
                 static_cast<int>(tids.size()) + 1);
    if (e.span.valid()) {
      auto [it, inserted] =
          flow_bounds.emplace(e.span.trace_id, std::make_pair(e.seq, e.seq));
      if (!inserted) it->second.second = e.seq;
    }
  }

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& obj) {
    if (!first) out += ",";
    first = false;
    out += obj;
  };
  for (const auto& [actor, pid] : pids) {
    emit("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" +
         std::to_string(pid) + ",\"tid\":0,\"args\":{\"name\":\"" +
         JsonEscape(actor) + "\"}}");
  }
  for (const auto& [key, tid] : tids) {
    emit("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" +
         std::to_string(pids[key.first]) + ",\"tid\":" + std::to_string(tid) +
         ",\"args\":{\"name\":\"" +
         JsonEscape(key.second.empty() ? "-" : key.second) + "\"}}");
  }
  for (const TraceEvent& e : events) {
    const char* span = nullptr;
    char ph = PhaseFor(e.type, &span);
    const int pid = pids[e.actor];
    const int tid = tids[{e.actor, e.session}];
    char buf[160];
    snprintf(buf, sizeof(buf),
             "{\"ph\":\"%c\",\"name\":\"%s\",\"ts\":%.3f,\"pid\":%d,"
             "\"tid\":%d",
             ph, span, e.model_ms * 1000.0, pid, tid);
    std::string obj = buf;
    if (ph == 'i') obj += ",\"s\":\"t\"";
    obj += ",\"args\":{\"seqno\":" + std::to_string(e.seqno);
    if (e.span.valid()) {
      obj += ",\"trace_id\":" + std::to_string(e.span.trace_id) +
             ",\"span_id\":" + std::to_string(e.span.span_id) +
             ",\"parent_span_id\":" + std::to_string(e.span.parent_span_id);
    }
    obj += ",\"detail\":\"" + JsonEscape(e.detail) + "\"}}";
    emit(obj);
    if (e.span.valid()) {
      const auto& bounds = flow_bounds[e.span.trace_id];
      if (bounds.first != bounds.second) {  // single-event traces draw nothing
        char fph = e.seq == bounds.first ? 's'
                   : e.seq == bounds.second ? 'f'
                                            : 't';
        snprintf(buf, sizeof(buf),
                 "{\"ph\":\"%c\",\"cat\":\"trace\",\"name\":\"trace\","
                 "\"id\":%llu,\"ts\":%.3f,\"pid\":%d,\"tid\":%d%s}",
                 fph, static_cast<unsigned long long>(e.span.trace_id),
                 e.model_ms * 1000.0, pid, tid,
                 fph == 'f' ? ",\"bp\":\"e\"" : "");
        emit(buf);
      }
    }
  }
  out += "]}";
  return out;
}

}  // namespace obs
}  // namespace msplog
