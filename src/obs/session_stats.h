// SessionStats — per-session telemetry for the adaptive-logging decision
// signals the ROADMAP calls for: request volume, nested-call fan-out,
// cross-server call rate per peer, flush stalls and their cost, log volume,
// and how often the session pays a forced (pessimistic) flush versus riding
// an optimistic DV piggyback.
//
// Concurrency contract mirrors the metric classes in metrics.h: every
// counter on the request hot path is one relaxed atomic RMW — no locks, no
// allocation. The only mutex guards the per-peer call map, which is touched
// exclusively on outgoing *remote* calls (those already pay a network round
// trip, so a short uncontended lock is noise).
//
// SessionStatsSnapshot is a plain value shared by three consumers:
//   * Msp::SessionTelemetry() / DumpStatusz() — live sessions;
//   * BENCH_JSON "session_telemetry" sections — per-bench dumps;
//   * msplog_inspect --stats — the same shape reconstructed offline from a
//     raw log image, so online and offline views diff cleanly.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "audit/mutex.h"

namespace msplog {
namespace obs {

/// Plain-value copy of one session's telemetry.
struct SessionStatsSnapshot {
  std::string session_id;
  uint64_t requests = 0;         ///< requests executed (not replayed)
  uint64_t nested_calls = 0;     ///< outgoing MSP→MSP calls, all peers
  uint64_t max_request_fanout = 0;  ///< max nested calls in one request
  uint64_t cross_domain_calls = 0;  ///< nested calls that left the domain
  uint64_t flush_stalls = 0;     ///< distributed flushes this session waited on
  double flush_stall_ms = 0;     ///< total model ms spent in those waits
  uint64_t log_records = 0;      ///< records appended on behalf of the session
  uint64_t log_bytes = 0;        ///< framed on-log bytes of those records
  uint64_t forced_flushes = 0;   ///< pessimistic boundaries (flush before send)
  uint64_t piggybacked_sends = 0;  ///< optimistic sends (DV rode the message)
  uint64_t checkpoints = 0;      ///< session checkpoints taken
  uint64_t replays = 0;          ///< requests re-executed during recovery
  uint64_t dv_entries = 0;       ///< current dependency-vector width
  std::map<std::string, uint64_t> calls_by_peer;  ///< nested calls per callee

  /// {"session":"s1","requests":N,...,"calls_by_peer":{"m2":N,...}}
  std::string ToJson() const;
};

/// Render a telemetry set as a JSON array (used by statusz and benches).
std::string SessionTelemetryJson(const std::vector<SessionStatsSnapshot>& v);

/// Live per-session accumulator. One instance lives inside each
/// msp::Session; the MSP hot paths call the On* hooks.
class SessionStats {
 public:
  SessionStats() = default;
  SessionStats(const SessionStats&) = delete;
  SessionStats& operator=(const SessionStats&) = delete;

  void OnRequest() { requests_.fetch_add(1, std::memory_order_relaxed); }

  /// An outgoing nested call to `peer`. Remote (cross-domain) calls also
  /// count toward the pessimistic-boundary pressure signal.
  void OnNestedCall(const std::string& peer, bool cross_domain);

  /// Fan-out of the request that just finished (nested calls it made).
  void OnRequestFanout(uint64_t calls);

  void OnFlushStall(double stall_ms);

  void OnLogAppend(uint64_t framed_bytes);

  void OnForcedFlush() {
    forced_flushes_.fetch_add(1, std::memory_order_relaxed);
  }
  void OnPiggybackedSend() {
    piggybacked_sends_.fetch_add(1, std::memory_order_relaxed);
  }
  void OnCheckpoint() {
    checkpoints_.fetch_add(1, std::memory_order_relaxed);
  }
  void OnReplayedRequests(uint64_t n) {
    replays_.fetch_add(n, std::memory_order_relaxed);
  }
  void SetDvEntries(uint64_t n) {
    dv_entries_.store(n, std::memory_order_relaxed);
  }

  uint64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }
  uint64_t flush_stalls() const {
    return flush_stalls_.load(std::memory_order_relaxed);
  }

  /// Plain-value copy; `session_id` is stamped into the snapshot.
  SessionStatsSnapshot Snap(const std::string& session_id) const;

 private:
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> nested_calls_{0};
  std::atomic<uint64_t> max_request_fanout_{0};
  std::atomic<uint64_t> cross_domain_calls_{0};
  std::atomic<uint64_t> flush_stalls_{0};
  std::atomic<double> flush_stall_ms_{0};
  std::atomic<uint64_t> log_records_{0};
  std::atomic<uint64_t> log_bytes_{0};
  std::atomic<uint64_t> forced_flushes_{0};
  std::atomic<uint64_t> piggybacked_sends_{0};
  std::atomic<uint64_t> checkpoints_{0};
  std::atomic<uint64_t> replays_{0};
  std::atomic<uint64_t> dv_entries_{0};

  mutable audit::Mutex peers_mu_{"obs.session_stats.peers"};
  std::map<std::string, uint64_t> calls_by_peer_ GUARDED_BY(peers_mu_);
};

}  // namespace obs
}  // namespace msplog
