#include "obs/flight_recorder.h"

#include <algorithm>
#include <cstdio>

#include "obs/metrics.h"  // JsonEscape

namespace msplog {
namespace obs {

namespace {

/// Guards FreezeOnViolation against reentry: a snapshot provider that trips
/// another invariant while being captured must not freeze recursively.
thread_local bool tls_in_violation_freeze = false;

std::string FmtMs(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

}  // namespace

const char* FlightEventTypeName(FlightEventType t) {
  switch (t) {
    case FlightEventType::kRequest: return "Request";
    case FlightEventType::kFlushLeg: return "FlushLeg";
    case FlightEventType::kDvUpdate: return "DvUpdate";
    case FlightEventType::kInvariant: return "Invariant";
    case FlightEventType::kCrash: return "Crash";
    case FlightEventType::kRecovery: return "Recovery";
    case FlightEventType::kNote: return "Note";
  }
  return "?";
}

std::string FlightBundle::ToJson() const {
  std::string out = "{";
  out += "\"frozen\":" + std::string(frozen ? "true" : "false") + ",";
  out += "\"generation\":" + std::to_string(generation) + ",";
  out += "\"actor\":\"" + JsonEscape(actor) + "\",";
  out += "\"trigger\":\"" + JsonEscape(trigger) + "\",";
  out += "\"detail\":\"" + JsonEscape(detail) + "\",";
  out += "\"held_locks\":\"" + JsonEscape(held_locks) + "\",";
  out += "\"frozen_at_ms\":" + FmtMs(frozen_at_ms) + ",";
  out += "\"events_dropped\":" + std::to_string(events_dropped) + ",";
  out += "\"events\":[";
  for (size_t i = 0; i < events.size(); ++i) {
    const FlightEvent& e = events[i];
    if (i) out += ",";
    out += "{\"type\":\"" + std::string(FlightEventTypeName(e.type)) +
           "\",\"t_ms\":" + FmtMs(e.t_ms) +
           ",\"seq\":" + std::to_string(e.seq) +
           ",\"seqno\":" + std::to_string(e.seqno) + ",\"actor\":\"" +
           JsonEscape(e.actor) + "\",\"session\":\"" + JsonEscape(e.session) +
           "\",\"detail\":\"" + JsonEscape(e.detail) + "\"}";
  }
  out += "],";
  out += "\"snapshots\":[";
  for (size_t i = 0; i < snapshots.size(); ++i) {
    const auto& [who, snap] = snapshots[i];
    if (i) out += ",";
    out += "{\"actor\":\"" + JsonEscape(who) + "\",";
    out += "\"log_end_lsn\":" + std::to_string(snap.log_end_lsn) + ",";
    out += "\"log_durable_lsn\":" + std::to_string(snap.log_durable_lsn) + ",";
    out += "\"log_reclaimed_lsn\":" + std::to_string(snap.log_reclaimed_lsn) +
           ",";
    out += "\"log_archived_lsn\":" + std::to_string(snap.log_archived_lsn) +
           ",";
    out += "\"inflight_sessions\":[";
    for (size_t j = 0; j < snap.inflight_sessions.size(); ++j) {
      if (j) out += ",";
      out += "\"" + JsonEscape(snap.inflight_sessions[j]) + "\"";
    }
    out += "],";
    // statusz is itself JSON — embed it raw so consumers get one tree.
    out += "\"statusz\":" +
           (snap.statusz_json.empty() ? std::string("null")
                                      : snap.statusz_json);
    out += "}";
  }
  out += "],";
  out += "\"tracer_tail\":" +
         (tracer_tail_json.empty() ? std::string("[]") : tracer_tail_json);
  out += "}";
  return out;
}

FlightRecorder::FlightRecorder(std::function<double()> now_ms)
    : FlightRecorder(std::move(now_ms), Options()) {}

FlightRecorder::FlightRecorder(std::function<double()> now_ms, Options options)
    : now_ms_(std::move(now_ms)), options_(options) {
  if (options_.ring_capacity == 0) options_.ring_capacity = 1;
  if (options_.max_bundles == 0) options_.max_bundles = 1;
  audit::LockGuard lk(mu_);
  ring_.reserve(options_.ring_capacity);
}

void FlightRecorder::set_tracer_tail_dump(std::function<std::string()> dump) {
  audit::LockGuard lk(mu_);
  tracer_tail_dump_ = std::move(dump);
}

void FlightRecorder::set_held_locks_dump(std::function<std::string()> dump) {
  audit::LockGuard lk(mu_);
  held_locks_dump_ = std::move(dump);
}

void FlightRecorder::SetSnapshotProvider(const std::string& actor,
                                         SnapshotProvider p) {
  audit::LockGuard lk(mu_);
  providers_[actor] = std::move(p);
}

void FlightRecorder::ClearSnapshotProvider(const std::string& actor) {
  audit::LockGuard lk(mu_);
  providers_.erase(actor);
}

void FlightRecorder::Record(FlightEventType type, const std::string& actor,
                            const std::string& session, uint64_t seqno,
                            const std::string& detail) {
  FlightEvent e;
  e.type = type;
  e.t_ms = now_ms_();
  e.seqno = seqno;
  e.actor = actor;
  e.session = session;
  e.detail = detail;
  audit::LockGuard lk(mu_);
  e.seq = total_++;
  if (ring_.size() < options_.ring_capacity) {
    ring_.push_back(std::move(e));
  } else {
    ring_[next_] = std::move(e);
    next_ = (next_ + 1) % options_.ring_capacity;
  }
}

std::vector<FlightEvent> FlightRecorder::RingEventsLocked() const {
  mu_.AssertHeld();
  std::vector<FlightEvent> out;
  out.reserve(ring_.size());
  size_t start = (total_ >= ring_.size() && !ring_.empty()) ? next_ : 0;
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

FlightBundle FlightRecorder::BuildBundleLocked(const std::string& actor,
                                               uint64_t generation,
                                               const std::string& trigger,
                                               const std::string& detail) {
  mu_.AssertHeld();
  FlightBundle b;
  b.frozen = true;
  b.generation = generation;
  b.actor = actor;
  b.trigger = trigger;
  b.detail = detail;
  b.frozen_at_ms = now_ms_();
  b.events = RingEventsLocked();
  b.events_dropped = total_ - ring_.size();
  return b;
}

FlightBundle FlightRecorder::FreezeOnCrash(const std::string& actor,
                                           uint64_t generation,
                                           const std::string& detail) {
  SnapshotProvider provider;
  std::function<std::string()> tracer_dump, locks_dump;
  FlightBundle b;
  {
    audit::LockGuard lk(mu_);
    b = BuildBundleLocked(actor, generation, "crash", detail);
    auto it = providers_.find(actor);
    if (it != providers_.end()) provider = it->second;
    tracer_dump = tracer_tail_dump_;
    locks_dump = held_locks_dump_;
  }
  // Providers run outside the recorder lock: they take server locks
  // (statusz, session table) and must never nest under mu_.
  if (tracer_dump) b.tracer_tail_json = tracer_dump();
  if (locks_dump) b.held_locks = locks_dump();
  if (provider) b.snapshots.emplace_back(actor, provider());
  audit::LockGuard lk(mu_);
  bundles_.push_back(b);
  ++frozen_total_;
  while (bundles_.size() > options_.max_bundles) bundles_.pop_front();
  return b;
}

void FlightRecorder::FreezeOnViolation(const std::string& invariant,
                                       const std::string& detail) {
  if (tls_in_violation_freeze) return;
  tls_in_violation_freeze = true;
  Record(FlightEventType::kInvariant, invariant, "", 0, detail);
  std::vector<std::pair<std::string, SnapshotProvider>> providers;
  std::function<std::string()> tracer_dump, locks_dump;
  FlightBundle b;
  {
    audit::LockGuard lk(mu_);
    b = BuildBundleLocked("", 0, "invariant:" + invariant, detail);
    providers.assign(providers_.begin(), providers_.end());
    tracer_dump = tracer_tail_dump_;
    locks_dump = held_locks_dump_;
  }
  if (tracer_dump) b.tracer_tail_json = tracer_dump();
  if (locks_dump) b.held_locks = locks_dump();
  for (auto& [who, provider] : providers) {
    b.snapshots.emplace_back(who, provider());
  }
  {
    audit::LockGuard lk(mu_);
    bundles_.push_back(std::move(b));
    ++frozen_total_;
    while (bundles_.size() > options_.max_bundles) bundles_.pop_front();
  }
  tls_in_violation_freeze = false;
}

std::vector<FlightBundle> FlightRecorder::Bundles() const {
  audit::LockGuard lk(mu_);
  return std::vector<FlightBundle>(bundles_.begin(), bundles_.end());
}

FlightBundle FlightRecorder::LatestBundleFor(const std::string& actor) const {
  audit::LockGuard lk(mu_);
  for (auto it = bundles_.rbegin(); it != bundles_.rend(); ++it) {
    if (it->actor == actor) return *it;
  }
  return FlightBundle{};
}

uint64_t FlightRecorder::frozen_count() const {
  audit::LockGuard lk(mu_);
  return frozen_total_;
}

uint64_t FlightRecorder::recorded_total() const {
  audit::LockGuard lk(mu_);
  return total_;
}

uint64_t FlightRecorder::dropped() const {
  audit::LockGuard lk(mu_);
  return total_ - ring_.size();
}

std::vector<FlightEvent> FlightRecorder::RingEvents() const {
  audit::LockGuard lk(mu_);
  return RingEventsLocked();
}

std::string FlightRecorder::DumpJson() const {
  std::vector<FlightBundle> bundles = Bundles();
  std::vector<FlightEvent> ring;
  uint64_t total, dropped_n;
  {
    audit::LockGuard lk(mu_);
    ring = RingEventsLocked();
    total = total_;
    dropped_n = total_ - ring_.size();
  }
  std::string out = "{\"ring\":{\"capacity\":" +
                    std::to_string(options_.ring_capacity) +
                    ",\"recorded_total\":" + std::to_string(total) +
                    ",\"dropped\":" + std::to_string(dropped_n) +
                    ",\"events\":[";
  for (size_t i = 0; i < ring.size(); ++i) {
    const FlightEvent& e = ring[i];
    if (i) out += ",";
    out += "{\"type\":\"" + std::string(FlightEventTypeName(e.type)) +
           "\",\"t_ms\":" + FmtMs(e.t_ms) +
           ",\"seq\":" + std::to_string(e.seq) +
           ",\"seqno\":" + std::to_string(e.seqno) + ",\"actor\":\"" +
           JsonEscape(e.actor) + "\",\"session\":\"" + JsonEscape(e.session) +
           "\",\"detail\":\"" + JsonEscape(e.detail) + "\"}";
  }
  out += "]},\"bundles\":[";
  for (size_t i = 0; i < bundles.size(); ++i) {
    if (i) out += ",";
    out += bundles[i].ToJson();
  }
  out += "]}";
  return out;
}

}  // namespace obs
}  // namespace msplog
