#include "audit/mutex.h"
#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace msplog {
namespace obs {

namespace {

/// Quantization unit: 1 µs expressed in model ms.
constexpr double kUnitMs = 1e-3;

uint64_t ToMicros(double value_ms) {
  if (!(value_ms > 0)) return 0;  // negatives and NaN clamp to bucket 0
  double u = value_ms / kUnitMs;
  if (u >= 9.0e15) return 9'000'000'000'000'000ULL;  // safety clamp
  return static_cast<uint64_t>(std::llround(u));
}

void AtomicAddDouble(std::atomic<double>* a, double d) {
  double cur = a->load(std::memory_order_relaxed);
  while (!a->compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
  }
}

void AtomicMinDouble(std::atomic<double>* a, double d) {
  double cur = a->load(std::memory_order_relaxed);
  while (d < cur &&
         !a->compare_exchange_weak(cur, d, std::memory_order_relaxed)) {
  }
}

void AtomicMaxDouble(std::atomic<double>* a, double d) {
  double cur = a->load(std::memory_order_relaxed);
  while (d > cur &&
         !a->compare_exchange_weak(cur, d, std::memory_order_relaxed)) {
  }
}

}  // namespace

size_t Histogram::BucketIndex(double value_ms) {
  uint64_t u = ToMicros(value_ms);
  if (u < kSubBuckets) return static_cast<size_t>(u);
  // Highest set bit position; u >= 32 so exp >= 5.
  int exp = std::bit_width(u) - 1;
  int shift = exp - 5;
  size_t idx = static_cast<size_t>(exp - 4) * kSubBuckets +
               static_cast<size_t>(u >> shift) - kSubBuckets;
  return std::min(idx, kNumBuckets - 1);
}

double Histogram::BucketLowerMs(size_t i) {
  size_t d = i / kSubBuckets;
  size_t sub = i % kSubBuckets;
  if (d == 0) return static_cast<double>(sub) * kUnitMs;
  uint64_t lo = (kSubBuckets + sub) << (d - 1);
  return static_cast<double>(lo) * kUnitMs;
}

double Histogram::BucketUpperMs(size_t i) {
  size_t d = i / kSubBuckets;
  if (d == 0) return BucketLowerMs(i) + kUnitMs;
  uint64_t width = 1ULL << (d - 1);
  return BucketLowerMs(i) + static_cast<double>(width) * kUnitMs;
}

void Histogram::Record(double value_ms) {
  if (std::isnan(value_ms)) return;
  buckets_[BucketIndex(value_ms)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&sum_, value_ms);
  AtomicMinDouble(&min_, value_ms);
  AtomicMaxDouble(&max_, value_ms);
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = s.count ? min_.load(std::memory_order_relaxed) : 0;
  s.max = s.count ? max_.load(std::memory_order_relaxed) : 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return s;
}

double Histogram::Snapshot::Quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample (0-based, nearest-rank with interpolation).
  double target = q * static_cast<double>(count - 1);
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    uint64_t n = buckets[i];
    if (n == 0) continue;
    if (static_cast<double>(seen + n) > target) {
      // Linear interpolation inside this bucket.
      double frac = (target - static_cast<double>(seen)) /
                    static_cast<double>(n);
      double lo = BucketLowerMs(i);
      double hi = BucketUpperMs(i);
      double v = lo + frac * (hi - lo);
      return std::clamp(v, min, max);
    }
    seen += n;
  }
  return max;
}

void Histogram::Snapshot::Merge(const Snapshot& other) {
  if (other.count == 0) return;
  if (count == 0 || other.min < min) min = other.min;
  if (count == 0 || other.max > max) max = other.max;
  count += other.count;
  sum += other.sum;
  for (size_t i = 0; i < kNumBuckets; ++i) buckets[i] += other.buckets[i];
}

Histogram::Snapshot Histogram::Snapshot::Delta(const Snapshot& before) const {
  Snapshot d = *this;
  d.count -= std::min(before.count, d.count);
  d.sum -= before.sum;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    d.buckets[i] -= std::min(before.buckets[i], d.buckets[i]);
  }
  return d;
}

std::string SnapshotJson(const Histogram::Snapshot& s) {
  char buf[256];
  snprintf(buf, sizeof(buf),
           "{\"count\":%llu,\"mean\":%.6g,\"p50\":%.6g,\"p90\":%.6g,"
           "\"p99\":%.6g,\"max\":%.6g,\"min\":%.6g}",
           static_cast<unsigned long long>(s.count), s.Mean(), s.P50(),
           s.P90(), s.P99(), s.max, s.count ? s.min : 0.0);
  return buf;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  audit::LockGuard lk(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  audit::LockGuard lk(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  audit::LockGuard lk(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsRegistry::RegistrySnapshot MetricsRegistry::Snap() const {
  RegistrySnapshot out;
  audit::LockGuard lk(mu_);
  for (const auto& [name, c] : counters_) out.counters[name] = c->Value();
  for (const auto& [name, g] : gauges_) out.gauges[name] = g->Value();
  for (const auto& [name, h] : histograms_) out.histograms[name] = h->Snap();
  return out;
}

std::string MetricsRegistry::ToJson() const {
  RegistrySnapshot s = Snap();
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : s.counters) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + std::to_string(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : s.gauges) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + std::to_string(v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : s.histograms) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + SnapshotJson(h);
  }
  out += "}}";
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace obs
}  // namespace msplog
