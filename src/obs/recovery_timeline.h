// RecoveryTimeline — structured per-phase accounting of one crash recovery
// (§4.3): the single-threaded analysis scan, the post-scan checkpoint, the
// moment the server reopened for traffic (instant restart), and every
// session replay that follows (background drain or on-demand admission
// after a crash, lazy when orphan recovery fires at an interception point).
// This is the sole source of the analysis-scan duration; the old
// Msp::last_recovery_scan_ms shim is gone — read analysis_scan_ms here.
//
// Provenance: alongside the phase durations, the timeline records *what*
// rebuilt each session — the MSP checkpoint the anchor pointed at, the
// session checkpoint replay initialized from, and the (epoch, seqno, LSN)
// of every request-boundary log record the final replay round consumed.
// This is the log-forensic view recovery debugging needs: "session X was
// rebuilt from checkpoint at LSN c by replaying records l1..ln".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace msplog {
namespace obs {

struct RecoveryTimeline {
  /// One (epoch, seqno, LSN) log record consumed by a replay. `epoch` is
  /// the epoch under which the replay re-adopted the record into the
  /// session's DV; `lsn` doubles as the paper's state number.
  struct RecordRef {
    uint32_t epoch = 0;
    uint64_t seqno = 0;
    uint64_t lsn = 0;
  };

  /// What rebuilt one session: the checkpoints it initialized from and the
  /// request-boundary records its final replay round consumed. Non-request
  /// records (logged shared reads, reply receives) consumed between requests
  /// are counted in log_records_consumed.
  struct SessionProvenance {
    std::string session_id;
    uint64_t session_checkpoint_lsn = 0;  ///< 0 = replayed from scratch
    uint64_t msp_checkpoint_lsn = 0;      ///< 0 = located by the scan alone
    uint64_t log_records_consumed = 0;    ///< all positions consumed
    std::vector<RecordRef> records;       ///< kRequestReceive records replayed
  };

  /// One completed replay of one session.
  struct SessionReplay {
    std::string session_id;
    double replay_ms = 0;          ///< model ms from replay start to end
    uint64_t requests_replayed = 0;
    uint32_t rounds = 0;           ///< ReplayOnce passes (orphan re-runs > 1)
    bool from_crash = false;       ///< true: §4.3 post-crash parallel replay;
                                   ///< false: §4.1 lazy orphan recovery
    bool converged = true;         ///< false: replay gave up with an error
  };

  uint32_t epoch = 0;              ///< epoch started by this recovery
  double started_model_ms = 0;     ///< NowModelMs at recovery start
  double analysis_scan_ms = 0;     ///< single-threaded log scan (§4.3)
  uint64_t analysis_records_scanned = 0;
  uint64_t analysis_bytes_scanned = 0;  ///< durable log extent scanned
  double post_scan_checkpoint_ms = 0;   ///< fresh MSP checkpoint (Fig. 12)
  /// Model ms from recovery start until the server reopened for traffic
  /// (instant restart: before any session replayed). Sessions become
  /// servable individually afterwards — see OutageReport's per-session
  /// time_to_servable_ms for the client-visible metric.
  double open_for_traffic_ms = 0;
  uint64_t sessions_to_recover = 0;     ///< sessions queued for replay
  std::vector<SessionReplay> session_replays;
  uint32_t max_parallel_replays = 0;    ///< peak concurrent session replays
  uint64_t orphan_events = 0;           ///< orphan detections attributed here
  /// Replays triggered by a live request hitting the admission gate ahead
  /// of the background drain (subset of session_replays).
  uint64_t on_demand_replays = 0;

  // ---- provenance ----
  uint64_t msp_checkpoint_lsn = 0;  ///< anchor's MSP checkpoint (0 = none)
  uint64_t scan_start_lsn = 0;      ///< analysis scan start position
  uint64_t scan_end_lsn = 0;        ///< durable extent end at recovery time
  /// Per-session provenance, one entry per session replayed (lazy orphan
  /// recoveries replace their session's entry).
  std::vector<SessionProvenance> provenance;

  /// Sum of per-session replay model ms (parallel replays overlap, so this
  /// can exceed wall model time).
  double TotalReplayMs() const {
    double t = 0;
    for (const auto& r : session_replays) t += r.replay_ms;
    return t;
  }

  std::string ToJson() const;
};

}  // namespace obs
}  // namespace msplog
