// RecoveryTimeline — structured per-phase accounting of one crash recovery
// (§4.3): the single-threaded analysis scan, the post-scan checkpoint, and
// every session replay that follows (parallel after a crash, lazy when
// orphan recovery fires at an interception point). Replaces the old
// Msp::last_recovery_scan_ms_ scalar, which survives as a shim.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace msplog {
namespace obs {

struct RecoveryTimeline {
  /// One completed replay of one session.
  struct SessionReplay {
    std::string session_id;
    double replay_ms = 0;          ///< model ms from replay start to end
    uint64_t requests_replayed = 0;
    uint32_t rounds = 0;           ///< ReplayOnce passes (orphan re-runs > 1)
    bool from_crash = false;       ///< true: §4.3 post-crash parallel replay;
                                   ///< false: §4.1 lazy orphan recovery
    bool converged = true;         ///< false: replay gave up with an error
  };

  uint32_t epoch = 0;              ///< epoch started by this recovery
  double started_model_ms = 0;     ///< NowModelMs at recovery start
  double analysis_scan_ms = 0;     ///< single-threaded log scan (§4.3)
  uint64_t analysis_records_scanned = 0;
  uint64_t analysis_bytes_scanned = 0;  ///< durable log extent scanned
  double post_scan_checkpoint_ms = 0;   ///< fresh MSP checkpoint (Fig. 12)
  uint64_t sessions_to_recover = 0;     ///< sessions queued for replay
  std::vector<SessionReplay> session_replays;
  uint32_t max_parallel_replays = 0;    ///< peak concurrent session replays
  uint64_t orphan_events = 0;           ///< orphan detections attributed here

  /// Sum of per-session replay model ms (parallel replays overlap, so this
  /// can exceed wall model time).
  double TotalReplayMs() const {
    double t = 0;
    for (const auto& r : session_replays) t += r.replay_ms;
    return t;
  }

  std::string ToJson() const;
};

}  // namespace obs
}  // namespace msplog
