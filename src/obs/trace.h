// EventTracer — a bounded, lock-striped ring buffer of structured
// request-lifecycle events.
//
// Every interesting transition on the request path (enqueue, dequeue,
// execute, local and distributed log flush, reply) and on the recovery path
// (analysis scan, per-session replay, checkpoints, orphan cuts) records one
// event stamped with model time, the acting component, the session and the
// request seqno. The buffer is bounded (oldest events are overwritten), so
// tracing can stay on during long benchmarks; recording is one short
// critical section on one of N stripes, so concurrent sessions do not
// serialize on the tracer. Overwrites are counted (dropped()) and mirrored
// into an optional Counter so truncated traces are detectable.
//
// Causal tracing: events may carry a SpanContext — a (trace_id, span_id,
// parent_span_id) triple propagated on the wire (rpc/message.h) from the
// client endpoint through every nested MSP→MSP call. The obs layer never
// generates ids on its own behalf; callers allocate them with NextSpanId()
// and pass them in, which keeps this layer free of any dependency on the
// simulation or server layers.
//
// Dump formats:
//   * DumpJson()           — a JSON array of event objects, schema in
//                            docs/OBSERVABILITY.md;
//   * DumpChromeTracing()  — the chrome://tracing / Perfetto "traceEvents"
//                            format: paired Start/End events become duration
//                            spans (ph B/E), everything else instants, and
//                            each trace_id additionally emits a chain of
//                            flow events (ph s/t/f) that draws the causal
//                            arrows across actors.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "audit/mutex.h"

namespace msplog {
namespace obs {

class Counter;

enum class TraceEventType : uint8_t {
  kEnqueue,           ///< request queued for its session worker
  kExecStart,         ///< service method invocation begins
  kExecEnd,           ///< service method invocation returns
  kLocalFlushStart,   ///< LogFile flush wait begins
  kLocalFlushEnd,     ///< flushed (or failed)
  kDistFlushStart,    ///< distributed flush (§3.1) begins
  kDistFlushEnd,      ///< all legs settled
  kReplySent,         ///< reply handed to the network
  kCheckpointBegin,   ///< session / shared-var / MSP checkpoint begins
  kCheckpointEnd,
  kRecoveryStart,     ///< crash recovery begins (analysis scan)
  kAnalysisScanEnd,   ///< single-threaded log scan done
  kRecoveryEnd,       ///< crash recovery returns (replays may continue)
  kReplayStart,       ///< one session's replay begins
  kReplayEnd,
  kOrphanDetected,    ///< an orphan dependency was proven
  kOrphanCut,         ///< EOS written, positions truncated (§4.1)
  kDequeue,           ///< session worker picked the request up
  kClientCallStart,   ///< client endpoint begins a synchronous call
  kClientCallEnd,     ///< matching reply accepted (or the call gave up)
  kFlushFlightLaunch, ///< distributed-flush flight (kFlushRequest) sent
  kFlushLegJoin,      ///< a flush leg joined an in-flight request
};

const char* TraceEventTypeName(TraceEventType t);

/// Causal-tracing context carried alongside an event. trace_id identifies
/// the whole client-rooted request tree; span_id the node this event belongs
/// to; parent_span_id its parent in the tree. All zero = untraced.
struct SpanContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;

  bool valid() const { return trace_id != 0; }
};

/// Process-wide unique id for spans and traces. A plain atomic counter: the
/// whole simulation runs in one process, and the determinism lint bans
/// unseeded randomness anyway.
uint64_t NextSpanId();

struct TraceEvent {
  TraceEventType type = TraceEventType::kEnqueue;
  double model_ms = 0;   ///< SimEnvironment::NowModelMs at record time
  uint64_t seq = 0;      ///< global record order (total order across threads)
  uint64_t seqno = 0;    ///< request sequence number (0 = not applicable)
  std::string actor;     ///< component id: MSP id, "<id>.log", client name
  std::string session;   ///< session id ("" = not applicable)
  std::string detail;    ///< free-form (variable name, peer, byte count, ...)
  SpanContext span;      ///< causal-tracing ids (trace_id 0 = untraced)
};

class EventTracer {
 public:
  explicit EventTracer(size_t capacity = 1 << 16, size_t stripes = 8);

  void set_enabled(bool v) { enabled_.store(v, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Mirror ring overwrites into `c` (e.g. the registry's
  /// "obs.trace_dropped"), so benches can surface truncation. May be null.
  void set_drop_counter(Counter* c) { drop_counter_ = c; }

  void Record(TraceEventType type, double model_ms, std::string actor,
              std::string session = "", uint64_t seqno = 0,
              std::string detail = "", SpanContext span = SpanContext());

  /// All retained events in global record order (by seq).
  std::vector<TraceEvent> Events() const;

  /// Number of events overwritten because the ring was full.
  uint64_t dropped() const;

  void Clear();

  /// JSON array of retained events. `max_events` > 0 keeps only that many
  /// of the NEWEST events — the tail a flight-recorder bundle embeds; 0
  /// dumps everything.
  std::string DumpJson(size_t max_events = 0) const;
  std::string DumpChromeTracing() const;

 private:
  struct Stripe {
    /// A class's own constructor is exempt from the analysis, so the
    /// capacity reservation lives here rather than in EventTracer's ctor.
    explicit Stripe(size_t capacity) { ring.reserve(capacity); }

    mutable audit::Mutex mu{"obs.trace_stripe"};
    /// Ring buffer, capacity per_stripe_.
    std::vector<TraceEvent> ring GUARDED_BY(mu);
    size_t next GUARDED_BY(mu) = 0;   ///< overwrite cursor once full
    uint64_t total GUARDED_BY(mu) = 0;  ///< events ever recorded here
  };

  size_t per_stripe_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
  std::atomic<uint64_t> seq_{0};
  std::atomic<bool> enabled_{true};
  Counter* drop_counter_ = nullptr;
};

}  // namespace obs
}  // namespace msplog
