#include "obs/blame.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>

namespace msplog {
namespace obs {

namespace {

struct TraceGroup {
  const TraceEvent* call_start = nullptr;
  const TraceEvent* call_end = nullptr;
  std::vector<const TraceEvent*> events;  ///< seq order
};

/// Parse "dv_entries=N" (the kDistFlushStart detail); 0 when absent.
uint64_t ParseDvEntries(const std::string& detail) {
  const std::string key = "dv_entries=";
  size_t pos = detail.find(key);
  if (pos == std::string::npos) return 0;
  return std::strtoull(detail.c_str() + pos + key.size(), nullptr, 10);
}

std::map<uint64_t, TraceGroup> GroupByTrace(
    const std::vector<TraceEvent>& events) {
  std::map<uint64_t, TraceGroup> traces;
  for (const TraceEvent& e : events) {
    if (e.span.trace_id == 0) continue;
    TraceGroup& g = traces[e.span.trace_id];
    g.events.push_back(&e);
    if (e.type == TraceEventType::kClientCallStart && !g.call_start) {
      g.call_start = &e;
    } else if (e.type == TraceEventType::kClientCallEnd) {
      g.call_end = &e;
    }
  }
  return traces;
}

}  // namespace

TailBlameReport AttributeTailLatency(const std::vector<TraceEvent>& events,
                                     double threshold_ms) {
  TailBlameReport r;
  r.threshold_ms = threshold_ms;

  for (const auto& [trace_id, g] : GroupByTrace(events)) {
    (void)trace_id;
    if (!g.call_start || !g.call_end) {
      ++r.traces_incomplete;
      continue;
    }

    // Root-MSP landmarks. The root MSP is wherever the first enqueue landed;
    // nested sub-requests run on other actors and stay inside exec.
    const TraceEvent* enq = nullptr;
    for (const TraceEvent* e : g.events) {
      if (e->type == TraceEventType::kEnqueue) {
        enq = e;
        break;
      }
    }
    if (!enq) {
      ++r.traces_incomplete;
      continue;
    }
    const std::string& root = enq->actor;
    const TraceEvent* deq = nullptr;
    const TraceEvent* exec0 = nullptr;
    const TraceEvent* exec1 = nullptr;
    const TraceEvent* reply = nullptr;
    for (const TraceEvent* e : g.events) {
      if (e->actor != root) continue;
      switch (e->type) {
        case TraceEventType::kDequeue:
          if (!deq) deq = e;
          break;
        case TraceEventType::kExecStart:
          if (!exec0) exec0 = e;
          break;
        case TraceEventType::kExecEnd:
          exec1 = e;
          break;
        case TraceEventType::kReplySent:
          reply = e;
          break;
        default:
          break;
      }
    }
    if (!deq || !exec0 || !exec1 || !reply) {
      ++r.traces_incomplete;
      continue;
    }

    double duration = g.call_end->model_ms - g.call_start->model_ms;
    ++r.traces_total;
    if (duration < threshold_ms) continue;
    ++r.traces_slow;
    r.total_ms += duration;

    double queue_wait = std::max(0.0, deq->model_ms - enq->model_ms);
    double exec = std::max(0.0, exec1->model_ms - exec0->model_ms);

    // Reply-path flushes: dist-flush intervals on the root MSP after exec
    // ended. A flush is "remote" when its DV spans a peer (dv_entries >= 2)
    // or when a flight launch/join fell inside its window; a single-entry
    // DV is a pure local log force.
    double local_flush = 0;
    double remote_flush = 0;
    for (size_t i = 0; i < g.events.size(); ++i) {
      const TraceEvent* s = g.events[i];
      if (s->type != TraceEventType::kDistFlushStart || s->actor != root ||
          s->model_ms < exec1->model_ms) {
        continue;
      }
      const TraceEvent* end = nullptr;
      for (size_t j = i + 1; j < g.events.size(); ++j) {
        const TraceEvent* e = g.events[j];
        if (e->type == TraceEventType::kDistFlushEnd &&
            e->span.span_id == s->span.span_id) {
          end = e;
          break;
        }
      }
      if (!end) continue;
      bool remote = ParseDvEntries(s->detail) >= 2;
      if (!remote) {
        for (const TraceEvent* e : g.events) {
          if ((e->type == TraceEventType::kFlushFlightLaunch ||
               e->type == TraceEventType::kFlushLegJoin) &&
              e->model_ms >= s->model_ms && e->model_ms <= end->model_ms) {
            remote = true;
            break;
          }
        }
      }
      double d = std::max(0.0, end->model_ms - s->model_ms);
      (remote ? remote_flush : local_flush) += d;
    }

    // Client-visible time outside the server window: network transit both
    // ways, busy-reply backoff, resend waits for dropped messages.
    double server_window = reply->model_ms - enq->model_ms;
    double net_resend = std::max(0.0, duration - server_window);

    r.queue_wait_ms += queue_wait;
    r.exec_ms += exec;
    r.local_flush_ms += local_flush;
    r.remote_flush_ms += remote_flush;
    r.net_resend_ms += net_resend;
    r.other_ms += std::max(0.0, duration - queue_wait - exec - local_flush -
                                    remote_flush - net_resend);
  }
  return r;
}

TailBlameReport AttributeTailQuantile(const std::vector<TraceEvent>& events,
                                      double q) {
  std::vector<double> durations;
  for (const auto& [trace_id, g] : GroupByTrace(events)) {
    (void)trace_id;
    if (g.call_start && g.call_end) {
      durations.push_back(g.call_end->model_ms - g.call_start->model_ms);
    }
  }
  if (durations.size() < 2) {
    TailBlameReport r;
    r.traces_incomplete = 0;
    return AttributeTailLatency(events, 0.0);
  }
  std::sort(durations.begin(), durations.end());
  q = std::min(std::max(q, 0.0), 1.0);
  size_t idx = static_cast<size_t>(
      std::ceil(q * static_cast<double>(durations.size() - 1)));
  return AttributeTailLatency(events, durations[idx]);
}

namespace {

void AppendF(std::string* out, const char* key, double v, bool comma = true) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\":%.4f%s", key, v, comma ? "," : "");
  *out += buf;
}

}  // namespace

std::string TailBlameReport::ToJson() const {
  std::string out = "{";
  AppendF(&out, "threshold_ms", threshold_ms);
  out += "\"traces_total\":" + std::to_string(traces_total) + ",";
  out += "\"traces_slow\":" + std::to_string(traces_slow) + ",";
  out += "\"traces_incomplete\":" + std::to_string(traces_incomplete) + ",";
  AppendF(&out, "total_ms", total_ms);
  out += "\"buckets\":{";
  AppendF(&out, "queue_wait_ms", queue_wait_ms);
  AppendF(&out, "exec_ms", exec_ms);
  AppendF(&out, "local_flush_ms", local_flush_ms);
  AppendF(&out, "remote_flush_ms", remote_flush_ms);
  AppendF(&out, "net_resend_ms", net_resend_ms);
  AppendF(&out, "other_ms", other_ms, /*comma=*/false);
  out += "},\"shares\":{";
  AppendF(&out, "queue_wait", Share(queue_wait_ms));
  AppendF(&out, "exec", Share(exec_ms));
  AppendF(&out, "local_flush", Share(local_flush_ms));
  AppendF(&out, "remote_flush", Share(remote_flush_ms));
  AppendF(&out, "net_resend", Share(net_resend_ms));
  AppendF(&out, "other", Share(other_ms), /*comma=*/false);
  out += "}}";
  return out;
}

}  // namespace obs
}  // namespace msplog
