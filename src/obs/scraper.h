// MetricsScraper — a background sampler that turns the snapshot counter bag
// (MetricsRegistry) into fixed-size time series.
//
// Design constraints:
//   * the sample path allocates nothing: every probe is registered up front
//     (capturing its stable metric handle), every ring is preallocated, and
//     one sample is "call probe, push {t, value}" per series;
//   * the scraper never touches simulation or server layers — timestamps
//     come from an injected clock callback (the environment passes
//     NowModelMs), which keeps src/obs dependency-free per the layering
//     lint;
//   * rings are bounded: once a series has `ring_capacity` points the oldest
//     is overwritten, and the total-push counter keeps wrap-around visible.
//
// Dump formats:
//   * DumpPrometheus() — text exposition, latest value per series
//     (`msplog_msp_requests 40`), names sanitized to [a-zA-Z0-9_:];
//   * DumpJson() — the full rings, for benches and offline plotting.
//
// The scraper outlives MSP crash/restart cycles (it belongs to the
// environment, not the server), so a series spanning a crash keeps every
// sample taken before, during, and after recovery.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "audit/mutex.h"

namespace msplog {
namespace obs {

class Counter;
class Gauge;
class Histogram;
class MetricsRegistry;

/// Fixed-capacity ring of (timestamp, value) samples. Not internally
/// synchronized — the scraper's mutex guards it.
class TimeSeriesRing {
 public:
  struct Sample {
    double t_ms = 0;
    double value = 0;
  };

  explicit TimeSeriesRing(size_t capacity);

  /// O(1), no allocation; overwrites the oldest sample once full.
  void Push(double t_ms, double value);

  /// Retained samples, oldest first (allocates; dump path only).
  std::vector<Sample> Samples() const;

  /// Samples ever pushed (>= Samples().size(); larger means wrapped).
  uint64_t total_pushed() const { return total_; }
  size_t size() const { return total_ < ring_.size() ? total_ : ring_.size(); }
  size_t capacity() const { return ring_.size(); }
  /// Latest sample; {0,0} when empty.
  Sample Latest() const;

 private:
  std::vector<Sample> ring_;
  size_t next_ = 0;
  uint64_t total_ = 0;
};

class MetricsScraper {
 public:
  struct Options {
    /// Real wall milliseconds between background samples. The default is
    /// deliberately coarse: on small (even single-core) hosts every scraper
    /// wakeup preempts a worker, and at 10x this rate that perturbation is
    /// measurable in response times. Tests that need dense samples pass a
    /// smaller period or drive SampleNow() directly.
    double period_ms = 100.0;
    /// Points retained per series.
    size_t ring_capacity = 256;
    /// Prometheus metric-name prefix.
    std::string prefix = "msplog";
  };

  /// `now_ms` supplies sample timestamps (model ms); it must be callable
  /// until the scraper is destroyed. (Two overloads rather than a default
  /// argument: a nested-class NSDMI default is ill-formed in the enclosing
  /// class body.)
  MetricsScraper(MetricsRegistry* registry, std::function<double()> now_ms);
  MetricsScraper(MetricsRegistry* registry, std::function<double()> now_ms,
                 Options options);
  ~MetricsScraper();

  MetricsScraper(const MetricsScraper&) = delete;
  MetricsScraper& operator=(const MetricsScraper&) = delete;

  // --- series registration (allocates; do before sampling starts) ---------

  /// Watch a registry counter / gauge under its metric name.
  void WatchCounter(const std::string& name);
  void WatchGauge(const std::string& name);
  /// Watch a registry histogram as three series: <name>.count, <name>.mean,
  /// <name>.p99.
  void WatchHistogram(const std::string& name);
  /// Watch everything currently interned in the registry. Metrics interned
  /// later are not picked up automatically; call again to adopt them.
  void WatchAllRegistered();
  /// Arbitrary probe (e.g. a per-session aggregate closure). `read` runs on
  /// the scraper thread and must not allocate or block on I/O.
  void AddProbe(const std::string& name, std::function<double()> read);

  // --- epoch marks --------------------------------------------------------

  /// One labelled instant on the shared time axis — a crash or a completed
  /// recovery. Marks make ring gaps attributable: a flat-lining series next
  /// to a "msp2 crash gen=3" mark is a dead server, not a scraper bug.
  struct EpochMark {
    double t_ms = 0;
    std::string label;
  };

  /// Record a mark (bounded: oldest evicted past kMaxEpochMarks). Safe from
  /// any thread, any time.
  void AnnotateEpoch(double t_ms, const std::string& label);
  /// Retained marks, oldest first.
  std::vector<EpochMark> EpochMarks() const;

  static constexpr size_t kMaxEpochMarks = 64;

  // --- lifecycle ----------------------------------------------------------

  /// Idempotent: starting a running scraper is a no-op.
  void Start();
  /// Idempotent: stops and joins the sampler thread; rings are retained.
  void Stop();
  bool running() const;

  /// Take one sample synchronously on the calling thread (tests/benches;
  /// works whether or not the background thread runs).
  void SampleNow();

  // --- introspection ------------------------------------------------------

  uint64_t samples_taken() const {
    return samples_.load(std::memory_order_relaxed);
  }
  std::vector<std::string> SeriesNames() const;
  /// False if no such series.
  bool Series(const std::string& name,
              std::vector<TimeSeriesRing::Sample>* out) const;
  /// Total pushes for one series (wrap-around detection); 0 if unknown.
  uint64_t SeriesTotalPushed(const std::string& name) const;

  std::string DumpPrometheus() const;
  std::string DumpJson() const;

  const Options& options() const { return options_; }

 private:
  struct Probe {
    std::string name;
    const char* prom_type;  ///< "counter" or "gauge"
    std::function<double()> read;
    TimeSeriesRing ring;
    Probe(std::string n, const char* t, std::function<double()> r,
          size_t capacity)
        : name(std::move(n)), prom_type(t), read(std::move(r)),
          ring(capacity) {}
  };

  void AddProbeLocked(const std::string& name, const char* prom_type,
                      std::function<double()> read) REQUIRES(mu_);
  void SampleLocked(double now) REQUIRES(mu_);
  void Loop();

  MetricsRegistry* registry_;
  std::function<double()> now_ms_;
  Options options_;

  /// Serializes Start/Stop against each other (never held on the sample
  /// path); ordered before mu_.
  audit::Mutex lifecycle_mu_{"obs.scraper.lifecycle"};
  mutable audit::Mutex mu_{"obs.scraper"};
  audit::CondVar cv_;
  std::vector<std::unique_ptr<Probe>> probes_ GUARDED_BY(mu_);
  std::deque<EpochMark> epoch_marks_ GUARDED_BY(mu_);
  bool running_ GUARDED_BY(mu_) = false;
  bool stop_ GUARDED_BY(mu_) = false;
  std::thread thread_;
  std::atomic<uint64_t> samples_{0};
};

}  // namespace obs
}  // namespace msplog
